//! Property-based tests for routing, traffic and cost invariants.

use proptest::prelude::*;
use uap_net::{
    AsId, FlowAllocator, HostId, LinkKind, PopulationSpec, ReferenceRouting, Relationship, Routing,
    RoutingMode, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use uap_sim::SimRng;

fn random_hierarchy(seed: u64, t1: usize, t2: usize, t3: usize) -> uap_net::AsGraph {
    TopologySpec::new(TopologyKind::Hierarchical {
        tier1: t1,
        tier2_per_tier1: t2,
        tier3_per_tier2: t3,
        tier2_peering_prob: 0.4,
        tier3_peering_prob: 0.4,
    })
    .build(&mut SimRng::new(seed))
}

/// A populated underlay plus a random flow set registered with the
/// allocator; returns the accepted flows as `(id, src, dst)`.
fn random_flow_set(
    seed: u64,
    n_hosts: usize,
    n_flows: usize,
) -> (Underlay, FlowAllocator, Vec<(u64, HostId, HostId)>) {
    let g = random_hierarchy(seed, 2, 2, 2);
    let mut rng = SimRng::new(seed ^ 0x5bd1_e995);
    let u = Underlay::build(
        g,
        &PopulationSpec::leaf(n_hosts),
        UnderlayConfig::default(),
        &mut rng,
    );
    let mut a = FlowAllocator::new(&u);
    a.begin();
    let mut flows = Vec::new();
    for id in 0..n_flows as u64 {
        let s = rng.below(n_hosts as u64) as u32;
        let mut d = rng.below(n_hosts as u64) as u32;
        if d == s {
            d = (d + 1) % n_hosts as u32;
        }
        let (s, d) = (HostId(s), HostId(d));
        if a.add_flow(id, s, d, &u) {
            flows.push((id, s, d));
        }
    }
    a.allocate();
    (u, a, flows)
}

/// Externally recomputed per-resource loads `(uplink, downlink, AS link)`
/// — deliberately independent of the allocator's own bookkeeping.
fn recompute_loads(
    u: &Underlay,
    a: &FlowAllocator,
    flows: &[(u64, HostId, HostId)],
) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let n = u.n_hosts();
    let mut up = vec![0.0; n];
    let mut down = vec![0.0; n];
    let mut link = vec![0.0; u.graph.links.len()];
    for &(id, s, d) in flows {
        let r = a.rate_of(id).expect("every registered flow has a rate");
        up[s.0 as usize] += r;
        down[d.0 as usize] += r;
        let (sa, da) = (u.hosts.as_of(s), u.hosts.as_of(d));
        if sa != da {
            for &li in u
                .routing
                .path_links(sa, da)
                .expect("fault-free graph is connected")
            {
                link[li as usize] += r;
            }
        }
    }
    (up, down, link)
}

/// Saturation slack mirroring the allocator's internal tolerance.
fn flow_slack(cap: f64) -> f64 {
    cap * 1e-9 + 1.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every valley-free path is (up)* (peer)? (down)*: after the first
    /// non-up move, no further up or peer moves appear.
    #[test]
    fn valley_free_paths_have_no_valley(seed in any::<u64>(), t1 in 1usize..4, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if a == b { continue; }
                if let Some(path) = r.path_ases(&g, a, b) {
                    let mut descending = false;
                    for w in path.windows(2) {
                        let rel = g.relationship(w[0], w[1]).expect("path uses real links");
                        match rel {
                            Relationship::CustomerOf => {
                                // climbing: must still be in the up phase
                                prop_assert!(!descending, "up move after descent in {path:?}");
                            }
                            Relationship::PeerWith => {
                                prop_assert!(!descending, "peer move after descent in {path:?}");
                                descending = true;
                            }
                            Relationship::ProviderOf => {
                                descending = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Valley-free never finds a shorter path than unrestricted routing,
    /// and both agree that paths have consistent endpoints.
    #[test]
    fn policy_never_beats_shortest_path(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 2);
        let vf = Routing::compute(&g, RoutingMode::ValleyFree);
        let sp = Routing::compute(&g, RoutingMode::ShortestPath);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                let h_sp = sp.as_hops(a, b);
                if let Some(h_vf) = vf.as_hops(a, b) {
                    prop_assert!(h_sp.is_some());
                    prop_assert!(h_vf >= h_sp.unwrap());
                }
            }
        }
    }

    /// AS-hop distance is symmetric under valley-free routing on these
    /// graphs (up*peer?down* reverses into up*peer?down*).
    #[test]
    fn valley_free_hops_are_symmetric(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 3, 2);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in (a + 1)..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                prop_assert_eq!(r.as_hops(a, b), r.as_hops(b, a));
            }
        }
    }

    /// Path links are real links forming a chain from src to dst.
    #[test]
    fn paths_are_wellformed_chains(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 3);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if let Some(links) = r.path_links(a, b) {
                    let mut cur = a;
                    for &li in links {
                        let link = &g.links[li as usize];
                        let next = link.other(cur);
                        prop_assert!(next.is_some(), "link {li} not incident to {cur}");
                        cur = next.unwrap();
                    }
                    prop_assert_eq!(cur, b);
                }
            }
        }
    }

    /// The parallel table build is byte-identical to the serial reference
    /// build on random hierarchies, for every thread count and both
    /// routing modes — scheduling cannot leak into the table.
    #[test]
    fn parallel_build_is_byte_identical_to_serial(seed in any::<u64>(), t1 in 1usize..3, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let serial = Routing::compute_serial(&g, mode, None);
            for threads in [1usize, 2, 3, 8] {
                let par = Routing::compute_with_mask_threads(&g, mode, None, threads);
                prop_assert!(serial == par, "{mode:?} with {threads} threads diverged from serial");
            }
        }
    }

    /// The parallel build stays byte-identical to serial under failure
    /// masks (the compute path failure experiments exercise).
    #[test]
    fn masked_parallel_build_matches_serial(seed in any::<u64>(), kill in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 2);
        let mut mask = vec![false; g.links.len()];
        if !mask.is_empty() {
            let k = (kill as usize) % mask.len();
            mask[k] = true;
        }
        let serial = Routing::compute_serial(&g, RoutingMode::ValleyFree, Some(&mask));
        for threads in [2usize, 5] {
            let par = Routing::compute_with_mask_threads(&g, RoutingMode::ValleyFree, Some(&mask), threads);
            prop_assert!(serial == par, "masked build with {threads} threads diverged");
        }
    }

    /// The precomputed route table answers every query — hops, latency,
    /// path and reachability — identically to the retained per-query
    /// reference implementation (raw Dijkstra-table probing).
    #[test]
    fn table_answers_match_reference(seed in any::<u64>(), t1 in 1usize..3, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let table = Routing::compute(&g, mode);
            let refr = ReferenceRouting::compute(&g, mode, None);
            let mut ref_reachable = 0usize;
            for a in 0..g.len() {
                for b in 0..g.len() {
                    let (a, b) = (AsId(a as u16), AsId(b as u16));
                    prop_assert_eq!(table.as_hops(a, b), refr.as_hops(a, b), "hops {}->{}", a, b);
                    prop_assert_eq!(table.latency_us(a, b), refr.latency_us(a, b), "latency {}->{}", a, b);
                    prop_assert_eq!(
                        table.path_links(a, b).map(<[u32]>::to_vec),
                        refr.path_links(a, b),
                        "path {}->{}", a, b
                    );
                    if a != b && refr.as_hops(a, b).is_some() {
                        ref_reachable += 1;
                    }
                }
            }
            let n = g.len();
            let expected = if n <= 1 {
                1.0
            } else {
                ref_reachable as f64 / (n * (n - 1)) as f64
            };
            prop_assert_eq!(table.reachable_fraction(), expected, "reachable fraction");
        }
    }

    /// Transit links always connect a provider to a customer of a lower or
    /// equal tier depth in generated hierarchies (no customer above its
    /// provider).
    #[test]
    fn hierarchy_transit_links_point_downward(seed in any::<u64>()) {
        use uap_net::Tier;
        let g = random_hierarchy(seed, 2, 2, 2);
        let rank = |t: Tier| match t {
            Tier::Tier1 => 0,
            Tier::Tier2 => 1,
            Tier::Tier3 => 2,
        };
        for l in &g.links {
            if l.kind == LinkKind::Transit {
                let pa = rank(g.nodes[l.a.idx()].tier);
                let pb = rank(g.nodes[l.b.idx()].tier);
                prop_assert!(pa < pb, "provider {:?} not above customer {:?}", l.a, l.b);
            }
        }
    }

    /// Incremental repair across a random chain of fault masks — links
    /// dropping, coming back, several at once, full heal at the end —
    /// stays byte-identical to a from-scratch masked rebuild and agrees
    /// with the pre-CSR reference implementation at every step.
    #[test]
    fn repair_chain_matches_full_rebuild_and_reference(
        seed in any::<u64>(),
        salt in any::<u64>(),
        threads in 1usize..4,
        sp in any::<bool>(),
    ) {
        let g = random_hierarchy(seed, 2, 3, 2);
        let mode = if sp { RoutingMode::ShortestPath } else { RoutingMode::ValleyFree };
        let mut rng = SimRng::new(salt);
        let (mut r, mut idx) = Routing::compute_indexed_threads(&g, mode, None, threads);
        let mut prev: Option<Vec<bool>> = None;
        for step in 0..5 {
            // Step 4 is a full heal; earlier steps are independent random
            // masks, so links flip both down and up between steps.
            let mask: Vec<bool> = if step == 4 {
                vec![false; g.links.len()]
            } else {
                (0..g.links.len()).map(|_| rng.f64() < 0.15).collect()
            };
            let stats = r.repair_with_mask(&mut idx, &g, prev.as_deref(), Some(&mask), threads);
            prop_assert_eq!(stats.sources_total, g.len());
            let full = Routing::compute_with_mask_threads(&g, mode, Some(&mask), threads);
            prop_assert!(r == full, "repair diverged at step {} ({:?})", step, stats);
            let refr = ReferenceRouting::compute(&g, mode, Some(&mask));
            for a in 0..g.len() {
                for b in 0..g.len() {
                    let (a, b) = (AsId(a as u16), AsId(b as u16));
                    prop_assert_eq!(r.as_hops(a, b), refr.as_hops(a, b));
                    prop_assert_eq!(r.latency_us(a, b), refr.latency_us(a, b));
                }
            }
            prev = Some(mask);
        }
    }

    /// Healing (unmasking) alone is repaired incrementally: downing one
    /// random link and restoring it round-trips to the pristine table
    /// without a full rebuild on the heal step (a single link can only
    /// dirty a minority of sources on these graphs... unless it is a
    /// cut link whose loss dirties everyone — then the *down* step may
    /// fall back, but the heal step must still restore exactly).
    #[test]
    fn unmask_repair_restores_pristine_table(seed in any::<u64>(), kill in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 3);
        let (mut r, mut idx) =
            Routing::compute_indexed_threads(&g, RoutingMode::ValleyFree, None, 2);
        let pristine = Routing::compute_with_mask_threads(&g, RoutingMode::ValleyFree, None, 2);
        let mut mask = vec![false; g.links.len()];
        mask[(kill % g.links.len() as u64) as usize] = true;
        r.repair_with_mask(&mut idx, &g, None, Some(&mask), 2);
        let heal = r.repair_with_mask(&mut idx, &g, Some(&mask), None, 2);
        prop_assert_eq!(heal.changed_links, 1);
        prop_assert!(r == pristine, "heal did not restore the pristine table");
    }

    /// Driving the full underlay through a compiled `FaultPlan` —
    /// LinkDown, TransitDown and LatencyInflation epochs overlapping at
    /// random, with a final all-clear boundary — keeps the repaired
    /// routing table byte-identical to a from-scratch masked build at
    /// every boundary. The route cache is revalidated by the debug
    /// coherence assertion inside `apply_fault_state` itself.
    #[test]
    fn fault_plan_epochs_repair_to_full_rebuild_answers(
        seed in any::<u64>(),
        salt in any::<u64>(),
        p in 0.02f64..0.25,
    ) {
        use uap_net::{FaultKind, FaultPlan, PopulationSpec, Underlay, UnderlayConfig};
        use uap_sim::SimTime;
        let g = random_hierarchy(seed, 2, 2, 2);
        let mut rng = SimRng::new(seed ^ 0x9e37_79b9);
        let mut u = Underlay::build(
            g,
            &PopulationSpec::leaf(40),
            UnderlayConfig::default(),
            &mut rng,
        );
        let s = |secs: u64| SimTime::from_secs(secs);
        let plan = FaultPlan::new()
            .epoch(s(10), s(40), FaultKind::RandomLinkDown { p, salt })
            .epoch(s(20), s(50), FaultKind::TransitDown { p, salt: salt ^ 1 })
            .epoch(s(30), s(45), FaultKind::LatencyInflation { factor: 2.5 })
            .epoch(s(35), s(60), FaultKind::LinkDown { links: vec![0] });
        let compiled = plan.compile(&u.graph);
        for &t in compiled.boundaries() {
            let state = compiled.state_at(t);
            u.apply_fault_state(&state);
            let full = Routing::compute_with_mask_threads(
                &u.graph,
                u.config.routing,
                state.mask.as_deref(),
                2,
            );
            prop_assert!(u.routing == full, "boundary at {:?} diverged", t);
        }
        // The last boundary is past every epoch end: fully healed.
        let end_state = compiled.state_at(*compiled.boundaries().last().unwrap());
        prop_assert_eq!(end_state.links_down(), 0);
    }

    /// Max-min allocations never overfill any resource: per-host uplink
    /// and downlink sums and per-AS-link sums (all recomputed externally
    /// from `rate_of` + the routing tables) stay within capacity.
    #[test]
    fn flow_allocation_respects_every_capacity(seed in any::<u64>(), n_flows in 1usize..24) {
        let (u, a, flows) = random_flow_set(seed, 30, n_flows);
        let (up, down, link) = recompute_loads(&u, &a, &flows);
        for &(id, _, _) in &flows {
            let r = a.rate_of(id).unwrap();
            prop_assert!(r.is_finite() && r >= 0.0, "flow {id} rate {r}");
        }
        for (i, &l) in up.iter().enumerate() {
            let cap = u.host(HostId(i as u32)).up_kbps as f64 * 125.0;
            prop_assert!(l <= cap + flow_slack(cap), "uplink {i}: {l} > {cap}");
        }
        for (i, &l) in down.iter().enumerate() {
            let cap = u.host(HostId(i as u32)).down_kbps as f64 * 125.0;
            prop_assert!(l <= cap + flow_slack(cap), "downlink {i}: {l} > {cap}");
        }
        for (li, &l) in link.iter().enumerate() {
            let cap = u.graph.links[li].capacity_mbps * 125_000.0;
            prop_assert!(l <= cap + flow_slack(cap), "AS link {li}: {l} > {cap}");
        }
    }

    /// The max-min property proper: every accepted flow crosses at least
    /// one saturated resource, so no flow's rate can be raised without
    /// lowering another's.
    #[test]
    fn every_flow_is_bottlenecked_somewhere(seed in any::<u64>(), n_flows in 1usize..24) {
        let (u, a, flows) = random_flow_set(seed, 30, n_flows);
        let (up, down, link) = recompute_loads(&u, &a, &flows);
        for &(id, s, d) in &flows {
            let mut sat = false;
            let ucap = u.host(s).up_kbps as f64 * 125.0;
            sat |= up[s.0 as usize] + flow_slack(ucap) >= ucap;
            let dcap = u.host(d).down_kbps as f64 * 125.0;
            sat |= down[d.0 as usize] + flow_slack(dcap) >= dcap;
            let (sa, da) = (u.hosts.as_of(s), u.hosts.as_of(d));
            if sa != da {
                for &li in u.routing.path_links(sa, da).unwrap() {
                    let lcap = u.graph.links[li as usize].capacity_mbps * 125_000.0;
                    sat |= link[li as usize] + flow_slack(lcap) >= lcap;
                }
            }
            prop_assert!(sat, "flow {} ({:?}->{:?}) crosses no saturated resource", id, s, d);
        }
    }

    /// Same seed ⇒ bit-identical rates, and so does registering the same
    /// flow set in reverse order — the allocation is a pure function of
    /// the flow *set*.
    #[test]
    fn flow_allocation_is_deterministic_and_order_free(seed in any::<u64>(), n_flows in 1usize..24) {
        let (_, a1, flows) = random_flow_set(seed, 30, n_flows);
        let (u2, a2, flows2) = random_flow_set(seed, 30, n_flows);
        prop_assert_eq!(&flows, &flows2);
        for &(id, _, _) in &flows {
            prop_assert_eq!(
                a1.rate_of(id).unwrap().to_bits(),
                a2.rate_of(id).unwrap().to_bits(),
                "same-seed rates diverged for flow {}", id
            );
        }
        let mut rev = FlowAllocator::new(&u2);
        rev.begin();
        for &(id, s, d) in flows.iter().rev() {
            prop_assert!(rev.add_flow(id, s, d, &u2));
        }
        rev.allocate();
        for &(id, _, _) in &flows {
            prop_assert_eq!(
                a1.rate_of(id).unwrap().to_bits(),
                rev.rate_of(id).unwrap().to_bits(),
                "insertion order changed the rate of flow {}", id
            );
        }
    }
}
