//! Property-based tests for routing, traffic and cost invariants.

use proptest::prelude::*;
use uap_net::{
    AsId, LinkKind, ReferenceRouting, Relationship, Routing, RoutingMode, TopologyKind,
    TopologySpec,
};
use uap_sim::SimRng;

fn random_hierarchy(seed: u64, t1: usize, t2: usize, t3: usize) -> uap_net::AsGraph {
    TopologySpec::new(TopologyKind::Hierarchical {
        tier1: t1,
        tier2_per_tier1: t2,
        tier3_per_tier2: t3,
        tier2_peering_prob: 0.4,
        tier3_peering_prob: 0.4,
    })
    .build(&mut SimRng::new(seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every valley-free path is (up)* (peer)? (down)*: after the first
    /// non-up move, no further up or peer moves appear.
    #[test]
    fn valley_free_paths_have_no_valley(seed in any::<u64>(), t1 in 1usize..4, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if a == b { continue; }
                if let Some(path) = r.path_ases(&g, a, b) {
                    let mut descending = false;
                    for w in path.windows(2) {
                        let rel = g.relationship(w[0], w[1]).expect("path uses real links");
                        match rel {
                            Relationship::CustomerOf => {
                                // climbing: must still be in the up phase
                                prop_assert!(!descending, "up move after descent in {path:?}");
                            }
                            Relationship::PeerWith => {
                                prop_assert!(!descending, "peer move after descent in {path:?}");
                                descending = true;
                            }
                            Relationship::ProviderOf => {
                                descending = true;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Valley-free never finds a shorter path than unrestricted routing,
    /// and both agree that paths have consistent endpoints.
    #[test]
    fn policy_never_beats_shortest_path(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 2);
        let vf = Routing::compute(&g, RoutingMode::ValleyFree);
        let sp = Routing::compute(&g, RoutingMode::ShortestPath);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                let h_sp = sp.as_hops(a, b);
                if let Some(h_vf) = vf.as_hops(a, b) {
                    prop_assert!(h_sp.is_some());
                    prop_assert!(h_vf >= h_sp.unwrap());
                }
            }
        }
    }

    /// AS-hop distance is symmetric under valley-free routing on these
    /// graphs (up*peer?down* reverses into up*peer?down*).
    #[test]
    fn valley_free_hops_are_symmetric(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 3, 2);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in (a + 1)..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                prop_assert_eq!(r.as_hops(a, b), r.as_hops(b, a));
            }
        }
    }

    /// Path links are real links forming a chain from src to dst.
    #[test]
    fn paths_are_wellformed_chains(seed in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 3);
        let r = Routing::compute(&g, RoutingMode::ValleyFree);
        for a in 0..g.len() {
            for b in 0..g.len() {
                let (a, b) = (AsId(a as u16), AsId(b as u16));
                if let Some(links) = r.path_links(a, b) {
                    let mut cur = a;
                    for &li in links {
                        let link = &g.links[li as usize];
                        let next = link.other(cur);
                        prop_assert!(next.is_some(), "link {li} not incident to {cur}");
                        cur = next.unwrap();
                    }
                    prop_assert_eq!(cur, b);
                }
            }
        }
    }

    /// The parallel table build is byte-identical to the serial reference
    /// build on random hierarchies, for every thread count and both
    /// routing modes — scheduling cannot leak into the table.
    #[test]
    fn parallel_build_is_byte_identical_to_serial(seed in any::<u64>(), t1 in 1usize..3, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let serial = Routing::compute_serial(&g, mode, None);
            for threads in [1usize, 2, 3, 8] {
                let par = Routing::compute_with_mask_threads(&g, mode, None, threads);
                prop_assert!(serial == par, "{mode:?} with {threads} threads diverged from serial");
            }
        }
    }

    /// The parallel build stays byte-identical to serial under failure
    /// masks (the compute path failure experiments exercise).
    #[test]
    fn masked_parallel_build_matches_serial(seed in any::<u64>(), kill in any::<u64>()) {
        let g = random_hierarchy(seed, 2, 2, 2);
        let mut mask = vec![false; g.links.len()];
        if !mask.is_empty() {
            let k = (kill as usize) % mask.len();
            mask[k] = true;
        }
        let serial = Routing::compute_serial(&g, RoutingMode::ValleyFree, Some(&mask));
        for threads in [2usize, 5] {
            let par = Routing::compute_with_mask_threads(&g, RoutingMode::ValleyFree, Some(&mask), threads);
            prop_assert!(serial == par, "masked build with {threads} threads diverged");
        }
    }

    /// The precomputed route table answers every query — hops, latency,
    /// path and reachability — identically to the retained per-query
    /// reference implementation (raw Dijkstra-table probing).
    #[test]
    fn table_answers_match_reference(seed in any::<u64>(), t1 in 1usize..3, t2 in 1usize..4, t3 in 1usize..4) {
        let g = random_hierarchy(seed, t1, t2, t3);
        for mode in [RoutingMode::ShortestPath, RoutingMode::ValleyFree] {
            let table = Routing::compute(&g, mode);
            let refr = ReferenceRouting::compute(&g, mode, None);
            let mut ref_reachable = 0usize;
            for a in 0..g.len() {
                for b in 0..g.len() {
                    let (a, b) = (AsId(a as u16), AsId(b as u16));
                    prop_assert_eq!(table.as_hops(a, b), refr.as_hops(a, b), "hops {}->{}", a, b);
                    prop_assert_eq!(table.latency_us(a, b), refr.latency_us(a, b), "latency {}->{}", a, b);
                    prop_assert_eq!(
                        table.path_links(a, b).map(<[u32]>::to_vec),
                        refr.path_links(a, b),
                        "path {}->{}", a, b
                    );
                    if a != b && refr.as_hops(a, b).is_some() {
                        ref_reachable += 1;
                    }
                }
            }
            let n = g.len();
            let expected = if n <= 1 {
                1.0
            } else {
                ref_reachable as f64 / (n * (n - 1)) as f64
            };
            prop_assert_eq!(table.reachable_fraction(), expected, "reachable fraction");
        }
    }

    /// Transit links always connect a provider to a customer of a lower or
    /// equal tier depth in generated hierarchies (no customer above its
    /// provider).
    #[test]
    fn hierarchy_transit_links_point_downward(seed in any::<u64>()) {
        use uap_net::Tier;
        let g = random_hierarchy(seed, 2, 2, 2);
        let rank = |t: Tier| match t {
            Tier::Tier1 => 0,
            Tier::Tier2 => 1,
            Tier::Tier3 => 2,
        };
        for l in &g.links {
            if l.kind == LinkKind::Transit {
                let pa = rank(g.nodes[l.a.idx()].tier);
                let pb = rank(g.nodes[l.b.idx()].tier);
                prop_assert!(pa < pb, "provider {:?} not above customer {:?}", l.a, l.b);
            }
        }
    }
}
