//! Peer churn modeling.
//!
//! Peers in deployed P2P systems join and leave continuously. The survey's
//! open issues (§5.4) single out "robustness especially against churn" as an
//! under-studied aspect of underlay awareness, so every overlay experiment
//! can attach a churn process.
//!
//! The model alternates **online sessions** and **offline gaps**, each drawn
//! from a configurable distribution. Exponential sessions give classical
//! memoryless churn; Pareto sessions reproduce the observed heavy tail
//! (a few very stable peers, many short-lived ones).

use crate::rng::SimRng;
use crate::time::SimTime;

/// Distribution family for session and offline durations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SessionDist {
    /// Fixed duration (useful in tests).
    Fixed(f64),
    /// Exponential with the given mean (seconds).
    Exponential {
        /// Mean duration in seconds.
        mean_secs: f64,
    },
    /// Pareto with scale (minimum, seconds) and shape alpha.
    Pareto {
        /// Minimum duration in seconds.
        scale_secs: f64,
        /// Tail exponent; smaller is heavier-tailed. Must be > 0.
        shape: f64,
    },
}

impl SessionDist {
    /// Draws a duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimTime {
        let secs = match *self {
            SessionDist::Fixed(s) => s,
            SessionDist::Exponential { mean_secs } => rng.exp(mean_secs),
            SessionDist::Pareto { scale_secs, shape } => rng.pareto(scale_secs, shape),
        };
        SimTime::from_secs_f64(secs)
    }

    /// Expected duration in seconds (infinite-mean Pareto returns `None`).
    pub fn mean_secs(&self) -> Option<f64> {
        match *self {
            SessionDist::Fixed(s) => Some(s),
            SessionDist::Exponential { mean_secs } => Some(mean_secs),
            SessionDist::Pareto { scale_secs, shape } => {
                if shape > 1.0 {
                    Some(shape * scale_secs / (shape - 1.0))
                } else {
                    None
                }
            }
        }
    }
}

/// Churn configuration for a peer population.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChurnConfig {
    /// Online session length distribution.
    pub session: SessionDist,
    /// Offline gap length distribution.
    pub offline: SessionDist,
    /// Fraction of peers online at simulation start.
    pub initial_online: f64,
}

impl ChurnConfig {
    /// No churn: peers stay online forever.
    pub fn none() -> Self {
        ChurnConfig {
            session: SessionDist::Fixed(f64::INFINITY),
            offline: SessionDist::Fixed(0.0),
            initial_online: 1.0,
        }
    }

    /// Moderate file-sharing churn: exponential sessions with the given mean,
    /// offline gaps of half that mean.
    pub fn exponential(mean_session_secs: f64) -> Self {
        ChurnConfig {
            session: SessionDist::Exponential {
                mean_secs: mean_session_secs,
            },
            offline: SessionDist::Exponential {
                mean_secs: mean_session_secs / 2.0,
            },
            initial_online: 1.0,
        }
    }

    /// Whether this configuration ever takes a peer offline.
    pub fn is_static(&self) -> bool {
        matches!(self.session, SessionDist::Fixed(s) if s.is_infinite())
    }
}

/// Per-peer churn state machine.
///
/// The overlay simulation asks for the next transition and schedules a
/// `Leave`/`Rejoin` event at that time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnModel {
    /// Peer is online; value is the scheduled leave time ([`SimTime::MAX`]
    /// when the configuration is static).
    Online {
        /// When the current session ends.
        until: SimTime,
    },
    /// Peer is offline; value is the scheduled rejoin time.
    Offline {
        /// When the peer comes back.
        until: SimTime,
    },
}

impl ChurnModel {
    /// Initializes a peer's churn state at time zero. Both branches go
    /// through the static check: a static configuration with
    /// `initial_online < 1.0` keeps its initially-offline peers offline
    /// forever instead of scheduling a finite rejoin (which would make a
    /// "static" population churn).
    pub fn start(cfg: &ChurnConfig, rng: &mut SimRng) -> ChurnModel {
        if rng.chance(cfg.initial_online) {
            ChurnModel::Online {
                until: Self::session_end(cfg, SimTime::ZERO, rng),
            }
        } else {
            ChurnModel::Offline {
                until: Self::offline_end(cfg, SimTime::ZERO, rng),
            }
        }
    }

    fn session_end(cfg: &ChurnConfig, now: SimTime, rng: &mut SimRng) -> SimTime {
        if cfg.is_static() {
            SimTime::MAX
        } else {
            now.saturating_add(cfg.session.sample(rng))
        }
    }

    fn offline_end(cfg: &ChurnConfig, now: SimTime, rng: &mut SimRng) -> SimTime {
        if cfg.is_static() {
            SimTime::MAX
        } else {
            now.saturating_add(cfg.offline.sample(rng))
        }
    }

    /// Advances to the next state at its transition time.
    pub fn transition(&mut self, cfg: &ChurnConfig, rng: &mut SimRng) {
        *self = match *self {
            ChurnModel::Online { until } => ChurnModel::Offline {
                until: until.saturating_add(cfg.offline.sample(rng)),
            },
            ChurnModel::Offline { until } => ChurnModel::Online {
                until: Self::session_end(cfg, until, rng),
            },
        };
    }

    /// Whether the peer is currently online.
    pub fn is_online(&self) -> bool {
        matches!(self, ChurnModel::Online { .. })
    }

    /// The time of the next transition.
    pub fn next_transition(&self) -> SimTime {
        match *self {
            ChurnModel::Online { until } | ChurnModel::Offline { until } => until,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_config_never_leaves() {
        let cfg = ChurnConfig::none();
        let mut rng = SimRng::new(1);
        let m = ChurnModel::start(&cfg, &mut rng);
        assert!(m.is_online());
        assert_eq!(m.next_transition(), SimTime::MAX);
    }

    #[test]
    fn static_config_initially_offline_never_rejoins() {
        // Regression: a static session config combined with a finite
        // offline distribution and `initial_online < 1.0` used to schedule
        // a finite rejoin for the initially-offline peers, so a "static"
        // population churned once. Both branches must honor `is_static`.
        let cfg = ChurnConfig {
            session: SessionDist::Fixed(f64::INFINITY),
            offline: SessionDist::Fixed(5.0),
            initial_online: 0.0,
        };
        let mut rng = SimRng::new(11);
        for _ in 0..100 {
            let m = ChurnModel::start(&cfg, &mut rng);
            assert!(!m.is_online());
            assert_eq!(
                m.next_transition(),
                SimTime::MAX,
                "static initially-offline peer must never schedule a rejoin"
            );
        }
    }

    #[test]
    fn alternates_states() {
        let cfg = ChurnConfig {
            session: SessionDist::Fixed(10.0),
            offline: SessionDist::Fixed(5.0),
            initial_online: 1.0,
        };
        let mut rng = SimRng::new(2);
        let mut m = ChurnModel::start(&cfg, &mut rng);
        assert!(m.is_online());
        assert_eq!(m.next_transition(), SimTime::from_secs(10));
        m.transition(&cfg, &mut rng);
        assert!(!m.is_online());
        assert_eq!(m.next_transition(), SimTime::from_secs(15));
        m.transition(&cfg, &mut rng);
        assert!(m.is_online());
        assert_eq!(m.next_transition(), SimTime::from_secs(25));
    }

    #[test]
    fn initial_online_fraction_respected() {
        let cfg = ChurnConfig {
            session: SessionDist::Fixed(10.0),
            offline: SessionDist::Fixed(5.0),
            initial_online: 0.3,
        };
        let mut rng = SimRng::new(3);
        let online = (0..10_000)
            .filter(|_| ChurnModel::start(&cfg, &mut rng).is_online())
            .count();
        assert!((online as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn pareto_mean() {
        let d = SessionDist::Pareto {
            scale_secs: 60.0,
            shape: 2.0,
        };
        assert_eq!(d.mean_secs(), Some(120.0));
        let heavy = SessionDist::Pareto {
            scale_secs: 60.0,
            shape: 0.9,
        };
        assert_eq!(heavy.mean_secs(), None);
    }

    #[test]
    fn exponential_sessions_have_expected_mean() {
        let d = SessionDist::Exponential { mean_secs: 30.0 };
        let mut rng = SimRng::new(4);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| d.sample(&mut rng).as_secs_f64())
            .sum::<f64>()
            / n as f64;
        assert!((mean - 30.0).abs() < 1.0, "mean {mean}");
    }
}
