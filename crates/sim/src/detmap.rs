//! Insertion-ordered deterministic map and set.
//!
//! `std::collections::HashMap` iterates in a per-process randomized order
//! (SipHash keys are seeded from the OS), so any simulation state that is
//! ever iterated — metric dumps, draining queues, tie-breaking scans —
//! becomes a run-to-run nondeterminism hazard. The workspace lint
//! (`cargo run -p xtask -- lint`) therefore bans `HashMap`/`HashSet` in
//! sim-path code. [`DetMap`] and [`DetSet`] are the drop-in alternatives
//! when *insertion order* is the natural iteration order; use `BTreeMap`/
//! `BTreeSet` when key order is.
//!
//! Lookups stay O(1) via an internal hash index (private, never
//! iterated, so its randomized order cannot leak). Iteration follows
//! insertion order. `remove` preserves the order of the remaining
//! entries (shift semantics, O(n) — same trade-off as `indexmap`'s
//! `shift_remove`); re-inserting an existing key updates the value but
//! keeps the key's original position.

use std::borrow::Borrow;
// The index is never iterated, so HashMap's randomized order cannot
// affect observable behaviour. lint:allow(hashmap)
use std::collections::HashMap;
use std::hash::Hash;

/// A map that iterates in insertion order with O(1) lookups.
#[derive(Clone, Debug, Default)]
pub struct DetMap<K, V> {
    entries: Vec<(K, V)>,
    index: HashMap<K, usize>, // lint:allow(hashmap)
}

impl<K: Eq + Hash + Clone, V> DetMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        DetMap {
            entries: Vec::new(),
            index: HashMap::new(), // lint:allow(hashmap)
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Inserts `value` under `key`. Returns the previous value if the key
    /// was present; its insertion position is kept in that case.
    // lint:allow(alloc) — first insert of a key clones it into the index; inherent to the structure
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.index.get(&key) {
            Some(&i) => {
                let slot = self.entries.get_mut(i).expect("index maps to a live entry"); // lint:allow(expect)
                Some(std::mem::replace(&mut slot.1, value))
            }
            None => {
                self.index.insert(key.clone(), self.entries.len());
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Borrowed-key lookup.
    pub fn get<Q>(&self, key: &Q) -> Option<&V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.index
            .get(key)
            // lint:allow(expect)
            .map(|&i| &self.entries.get(i).expect("index maps to a live entry").1)
    }

    /// Mutable borrowed-key lookup.
    pub fn get_mut<Q>(&mut self, key: &Q) -> Option<&mut V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        match self.index.get(key) {
            Some(&i) => {
                let slot = self.entries.get_mut(i).expect("index maps to a live entry"); // lint:allow(expect)
                Some(&mut slot.1)
            }
            None => None,
        }
    }

    /// True when `key` is present.
    pub fn contains_key<Q>(&self, key: &Q) -> bool
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.index.contains_key(key)
    }

    /// Removes `key`, returning its value. Later entries shift down one
    /// position (O(n)) so the remaining iteration order is unchanged.
    pub fn remove<Q>(&mut self, key: &Q) -> Option<V>
    where
        K: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        let i = self.index.remove(key)?;
        let (_, value) = self.entries.remove(i);
        for (k, _) in self.entries.iter().skip(i) {
            if let Some(slot) = self.index.get_mut::<K>(k) {
                *slot -= 1;
            }
        }
        Some(value)
    }

    /// Returns the value under `key`, inserting `default()` first if absent.
    pub fn entry_or_insert_with<F: FnOnce() -> V>(&mut self, key: K, default: F) -> &mut V {
        let i = match self.index.get(&key) {
            Some(&i) => i,
            None => {
                let i = self.entries.len();
                self.index.insert(key.clone(), i);
                self.entries.push((key, default()));
                i
            }
        };
        &mut self.entries[i].1
    }

    /// Entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Mutable entries in insertion order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (&K, &mut V)> {
        self.entries.iter_mut().map(|(k, v)| (&*k, v))
    }

    /// Keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.entries.iter().map(|(_, v)| v)
    }

    /// Removes every entry.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
    }
}

impl<K: Eq + Hash + Clone, V> FromIterator<(K, V)> for DetMap<K, V> {
    fn from_iter<I: IntoIterator<Item = (K, V)>>(iter: I) -> Self {
        let mut map = DetMap::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

impl<'a, K: Eq + Hash + Clone, V> IntoIterator for &'a DetMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Map<std::slice::Iter<'a, (K, V)>, fn(&'a (K, V)) -> (&'a K, &'a V)>;

    fn into_iter(self) -> Self::IntoIter {
        fn split<K, V>(e: &(K, V)) -> (&K, &V) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

impl<K: Eq + Hash + Clone, V> IntoIterator for DetMap<K, V> {
    type Item = (K, V);
    type IntoIter = std::vec::IntoIter<(K, V)>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// A set that iterates in insertion order with O(1) membership tests.
#[derive(Clone, Debug, Default)]
pub struct DetSet<T> {
    map: DetMap<T, ()>,
}

impl<T: Eq + Hash + Clone> DetSet<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        DetSet { map: DetMap::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when the set is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Adds `value`; returns true if it was not already present.
    pub fn insert(&mut self, value: T) -> bool {
        self.map.insert(value, ()).is_none()
    }

    /// True when `value` is a member.
    pub fn contains<Q>(&self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.contains_key(value)
    }

    /// Removes `value`; returns true if it was present. O(n) shift, order
    /// of the remaining elements unchanged.
    pub fn remove<Q>(&mut self, value: &Q) -> bool
    where
        T: Borrow<Q>,
        Q: Eq + Hash + ?Sized,
    {
        self.map.remove(value).is_some()
    }

    /// Elements in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.map.keys()
    }

    /// Removes every element.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

impl<T: Eq + Hash + Clone> FromIterator<T> for DetSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut set = DetSet::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::{DetMap, DetSet};

    #[test]
    fn iteration_follows_insertion_order() {
        let mut m = DetMap::new();
        for k in [30u32, 10, 20, 5] {
            m.insert(k, k * 2);
        }
        let keys: Vec<u32> = m.keys().copied().collect();
        assert_eq!(keys, vec![30, 10, 20, 5]);
        let vals: Vec<u32> = m.values().copied().collect();
        assert_eq!(vals, vec![60, 20, 40, 10]);
    }

    #[test]
    fn reinsert_keeps_position_and_returns_old() {
        let mut m = DetMap::new();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.insert("a", 9), Some(1));
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec!["a", "b"]);
        assert_eq!(m.get("a"), Some(&9));
    }

    #[test]
    fn remove_shifts_but_preserves_order() {
        let mut m: DetMap<u8, u8> = (0u8..6).map(|k| (k, k)).collect();
        assert_eq!(m.remove(&2), Some(2));
        assert_eq!(m.remove(&9), None);
        assert_eq!(m.keys().copied().collect::<Vec<_>>(), vec![0, 1, 3, 4, 5]);
        // Index stays consistent after the shift.
        for k in [0u8, 1, 3, 4, 5] {
            assert_eq!(m.get(&k), Some(&k));
        }
        m.insert(2, 2);
        assert_eq!(
            m.keys().copied().collect::<Vec<_>>(),
            vec![0, 1, 3, 4, 5, 2]
        );
    }

    #[test]
    fn entry_or_insert_with() {
        let mut m: DetMap<&str, Vec<u32>> = DetMap::new();
        m.entry_or_insert_with("x", Vec::new).push(1);
        m.entry_or_insert_with("x", Vec::new).push(2);
        assert_eq!(m.get("x"), Some(&vec![1, 2]));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn set_semantics() {
        let mut s = DetSet::new();
        assert!(s.insert(7u64));
        assert!(!s.insert(7));
        assert!(s.insert(3));
        assert!(s.contains(&7));
        assert_eq!(s.iter().copied().collect::<Vec<_>>(), vec![7, 3]);
        assert!(s.remove(&7));
        assert!(!s.remove(&7));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn same_insertions_same_order_across_instances() {
        // The determinism property itself: two maps fed the same sequence
        // iterate identically (unlike HashMap, whose order is seeded).
        let feed = |m: &mut DetMap<u64, u64>| {
            for k in [9u64, 1, 8, 2, 7, 3] {
                m.insert(k, k);
            }
            m.remove(&8);
            m.insert(100, 100);
        };
        let (mut a, mut b) = (DetMap::new(), DetMap::new());
        feed(&mut a);
        feed(&mut b);
        let ka: Vec<u64> = a.keys().copied().collect();
        let kb: Vec<u64> = b.keys().copied().collect();
        assert_eq!(ka, kb);
        assert_eq!(ka, vec![9, 1, 2, 7, 3, 100]);
    }
}
