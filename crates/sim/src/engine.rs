//! The simulation driver.
//!
//! [`Simulator`] owns the clock, the event queue, the RNG and the metrics
//! registry. A protocol crate supplies a [`World`] implementation; the engine
//! pops events in deterministic order and hands each to the world together
//! with a [`Ctx`] through which the world schedules follow-up events.

use crate::event::EventQueue;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::trace::{Fields, Provenance, TraceLevel, Tracer, WallTimer};

/// A protocol state machine driven by the engine.
pub trait World<E> {
    /// Handles one event. `ctx` exposes the clock, scheduling, randomness and
    /// metrics.
    fn handle(&mut self, event: E, ctx: &mut Ctx<'_, E>);

    /// A stable, static name for the event's type, used by the engine's
    /// per-kind profiling counters (`engine.events.<kind>`) and dispatch
    /// trace events. Worlds with a single event shape can keep the default.
    fn kind_of(&self, _event: &E) -> &'static str {
        "event"
    }
}

/// Engine services exposed to the world while it handles an event.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    /// Deterministic random number generator for this run.
    pub rng: &'a mut SimRng,
    /// Metrics registry for this run.
    pub metrics: &'a mut Metrics,
    /// Structured trace collector for this run (no-op unless the harness
    /// installed one via [`Simulator::set_tracer`]).
    pub tracer: &'a mut Tracer,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`. The tracer's current causal
    /// provenance (span + cause) rides along with the event and is
    /// restored when the engine dispatches it, so causal chains span
    /// message hops through the queue.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue
            .push_with(self.now + delay, event, self.tracer.provenance());
    }

    /// Schedules `event` at absolute time `at`; clamped to "now" if in the
    /// past so causality is never violated. Carries the current causal
    /// provenance like [`Ctx::schedule_in`].
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue
            .push_with(at.max(self.now), event, self.tracer.provenance());
    }

    /// Schedules `event` after `delay` with **root** (empty) provenance,
    /// ignoring the current causal context. Periodic self-reschedules
    /// (ping cycles, query cycles) use this so inherited chains stay
    /// bounded: each new cycle is a fresh causal root, not a descendant
    /// of every cycle before it.
    pub fn schedule_in_root(&mut self, delay: SimTime, event: E) {
        self.queue
            .push_with(self.now + delay, event, Provenance::ROOT);
    }

    /// Requests the run to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Emits a trace event stamped with the current simulated time and the
    /// tracer's ambient causal provenance. The field-builder closure only
    /// runs when `component`/`level` is enabled, so this costs one branch
    /// on the disabled path. Returns the admitted event's `seq` (or
    /// `None` when filtered) so the caller can use it as a cause anchor.
    #[inline]
    pub fn trace(
        &mut self,
        component: &'static str,
        level: TraceLevel,
        kind: &'static str,
        build: impl FnOnce(&mut Fields),
    ) -> Option<u64> {
        self.tracer.emit(self.now, component, level, kind, build)
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events processed.
    pub events_processed: u64,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Whether the run ended because the world called [`Ctx::stop`].
    pub stopped_early: bool,
}

/// Opt-in, determinism-safe engine profiling.
///
/// Everything the profiler writes into [`Metrics`] is a pure function of
/// the run (event kinds, queue depths, sim-time buckets) and therefore
/// byte-identical across same-seed runs. The one wall-clock facility —
/// the stage timer — is kept *outside* the metrics registry and the
/// tracer: its reading is only available through
/// [`Simulator::profile_wall_secs`], for `BENCH_*.json`-style perf
/// artifacts that are excluded from determinism comparison.
#[derive(Clone, Copy, Debug)]
pub struct ProfileConfig {
    /// Sample the queue depth into the `engine.queue_depth` time series
    /// every this many processed events (`0` disables the series).
    pub queue_depth_every: u64,
    /// Record the `engine.events_per_sec` time series: events processed
    /// per simulated second.
    pub events_per_sim_sec: bool,
    /// Start the opt-in wall-clock stage timer (the wallclock allow
    /// boundary lives in [`crate::trace`]).
    pub wall_timer: bool,
}

impl Default for ProfileConfig {
    fn default() -> Self {
        ProfileConfig {
            queue_depth_every: 1024,
            events_per_sim_sec: true,
            wall_timer: false,
        }
    }
}

/// Internal profiler state.
struct Profiler {
    cfg: ProfileConfig,
    /// Events processed per [`World::kind_of`] name; flushed into
    /// `engine.events.<kind>` counters when a run segment ends.
    kinds: std::collections::BTreeMap<&'static str, u64>,
    /// Current events-per-sim-second bucket: (second index, count).
    sec_bucket: (u64, u64),
    wall: Option<WallTimer>,
}

impl Profiler {
    fn new(cfg: ProfileConfig) -> Profiler {
        Profiler {
            cfg,
            kinds: std::collections::BTreeMap::new(),
            sec_bucket: (0, 0),
            wall: if cfg.wall_timer {
                Some(WallTimer::start())
            } else {
                None
            },
        }
    }

    fn on_event(
        &mut self,
        kind: &'static str,
        now: SimTime,
        queue_len: usize,
        n: u64,
        metrics: &mut Metrics,
    ) {
        *self.kinds.entry(kind).or_insert(0) += 1;
        if self.cfg.queue_depth_every > 0 && n.is_multiple_of(self.cfg.queue_depth_every) {
            metrics.trace("engine.queue_depth", now, queue_len as f64);
        }
        if self.cfg.events_per_sim_sec {
            let sec = now.as_micros() / 1_000_000;
            if sec != self.sec_bucket.0 {
                if self.sec_bucket.1 > 0 {
                    metrics.trace(
                        "engine.events_per_sec",
                        SimTime::from_secs(self.sec_bucket.0),
                        self.sec_bucket.1 as f64,
                    );
                }
                self.sec_bucket = (sec, 0);
            }
            self.sec_bucket.1 += 1;
        }
    }

    /// Drains accumulated per-kind counts into `engine.events.<kind>`
    /// counters and closes the open events-per-sec bucket.
    // lint:allow(alloc) — end-of-run drain, once per run, not per event
    fn flush(&mut self, metrics: &mut Metrics) {
        for (kind, n) in std::mem::take(&mut self.kinds) {
            metrics.incr(&format!("engine.events.{kind}"), n);
        }
        if self.cfg.events_per_sim_sec && self.sec_bucket.1 > 0 {
            metrics.trace(
                "engine.events_per_sec",
                SimTime::from_secs(self.sec_bucket.0),
                self.sec_bucket.1 as f64,
            );
            self.sec_bucket.1 = 0;
        }
    }
}

/// The discrete-event simulator.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    rng: SimRng,
    metrics: Metrics,
    tracer: Tracer,
    profiler: Option<Profiler>,
    events_processed: u64,
    /// Hard cap on processed events; guards against protocol bugs that
    /// generate unbounded event storms. Default: 500 million.
    pub event_limit: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator with the given seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            metrics: Metrics::new(),
            tracer: Tracer::disabled(),
            profiler: None,
            events_processed: 0,
            event_limit: 500_000_000,
        }
    }

    /// Installs a tracer; the default is the no-op [`Tracer::disabled`].
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The installed tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Mutable access to the tracer (for setup-time events).
    pub fn tracer_mut(&mut self) -> &mut Tracer {
        &mut self.tracer
    }

    /// Removes and returns the tracer, leaving a disabled one behind.
    /// Harnesses use this to write the trace after the run.
    pub fn take_tracer(&mut self) -> Tracer {
        std::mem::take(&mut self.tracer)
    }

    /// Enables determinism-safe engine profiling (see [`ProfileConfig`]).
    pub fn enable_profiling(&mut self, cfg: ProfileConfig) {
        self.profiler = Some(Profiler::new(cfg));
    }

    /// Wall-clock seconds since profiling was enabled, if the opt-in
    /// stage timer was requested. This value never enters [`Metrics`] or
    /// the trace stream — it exists solely for perf artifacts that the
    /// determinism gate excludes.
    pub fn profile_wall_secs(&self) -> Option<f64> {
        self.profiler
            .as_ref()
            .and_then(|p| p.wall.as_ref())
            .map(|w| w.elapsed_secs())
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time before the run starts (or
    /// between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// The RNG, for pre-run setup draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics registry (for setup-time accounting and quantiles).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Consumes the simulator, returning its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Runs until the queue is empty or the world stops the run.
    pub fn run<W: World<E>>(&mut self, world: &mut W) -> RunStats {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until `deadline` (inclusive of events at the deadline), the queue
    /// empties, or the world stops the run.
    pub fn run_until<W: World<E>>(&mut self, world: &mut W, deadline: SimTime) -> RunStats {
        let mut stopped = false;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            if self.events_processed >= self.event_limit {
                // Deliberate abort: a runaway event storm means the world is
                // livelocked and no useful result exists. lint:allow(panic)
                panic!(
                    "event limit {} exceeded at t={} — runaway event storm?",
                    self.event_limit, self.now
                );
            }
            let (t, ev, prov) = self.queue.pop_full().expect("peeked event vanished"); // lint:allow(expect)
            debug_assert!(t >= self.now, "event queue delivered out of order");
            self.now = t;
            self.events_processed += 1;
            // Restore the scheduler's causal context: events this handler
            // emits or schedules inherit the provenance the message was
            // sent with (fresh for every dispatch, so nothing leaks
            // between handlers).
            self.tracer.set_provenance(prov);
            if self.profiler.is_some() || self.tracer.is_enabled("engine", TraceLevel::Trace) {
                let kind = world.kind_of(&ev);
                let queue_len = self.queue.len();
                if let Some(p) = &mut self.profiler {
                    p.on_event(
                        kind,
                        self.now,
                        queue_len,
                        self.events_processed,
                        &mut self.metrics,
                    );
                }
                self.tracer
                    .emit(self.now, "engine", TraceLevel::Trace, "dispatch", |f| {
                        f.str("kind", kind).u64("queue", queue_len as u64);
                    });
            }
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                tracer: &mut self.tracer,
                stop: &mut stopped,
            };
            world.handle(ev, &mut ctx);
            if stopped {
                break;
            }
        }
        // End-of-run emissions (link totals, run summaries) are causal
        // roots, not descendants of the last dispatched event.
        self.tracer.clear_provenance();
        if let Some(p) = &mut self.profiler {
            p.flush(&mut self.metrics);
        }
        if !stopped && self.now < deadline && deadline != SimTime::MAX {
            // Queue drained before the deadline: advance the clock so
            // rate-style metrics (bytes/sec over the run) are well defined.
            self.now = deadline;
        }
        RunStats {
            events_processed: self.events_processed,
            end_time: self.now,
            stopped_early: stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    struct Echo {
        seen: Vec<(SimTime, u32)>,
    }

    impl World<Ev> for Echo {
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Ping(n) => {
                    self.seen.push((ctx.now(), n));
                    ctx.metrics.incr("ping", 1);
                    ctx.trace("echo", TraceLevel::Debug, "ping", |f| {
                        f.u64("n", n as u64);
                    });
                    if n < 3 {
                        ctx.schedule_in(SimTime::from_millis(10), Ev::Ping(n + 1));
                    }
                }
                Ev::Stop => ctx.stop(),
            }
        }

        fn kind_of(&self, ev: &Ev) -> &'static str {
            match ev {
                Ev::Ping(_) => "ping",
                Ev::Stop => "stop",
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run(&mut w);
        assert_eq!(stats.events_processed, 4);
        assert_eq!(w.seen.len(), 4);
        assert_eq!(w.seen[3], (SimTime::from_millis(31), 3));
        assert_eq!(sim.metrics().counter("ping"), 4);
        assert!(!stats.stopped_early);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Stop);
        sim.schedule_at(SimTime::from_millis(2), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run(&mut w);
        assert!(stats.stopped_early);
        assert!(w.seen.is_empty());
    }

    #[test]
    fn deadline_cuts_off_and_advances_clock() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run_until(&mut w, SimTime::from_millis(15));
        // Pings at 1ms and 11ms fire; 21ms is beyond the deadline.
        assert_eq!(w.seen.len(), 2);
        assert_eq!(stats.end_time, SimTime::from_millis(15));
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct Clamper {
            fired_at: Option<SimTime>,
        }
        enum E2 {
            First,
            Late,
        }
        impl World<E2> for Clamper {
            fn handle(&mut self, ev: E2, ctx: &mut Ctx<'_, E2>) {
                match ev {
                    E2::First => ctx.schedule_at(SimTime::ZERO, E2::Late),
                    E2::Late => self.fired_at = Some(ctx.now()),
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(5), E2::First);
        let mut w = Clamper { fired_at: None };
        sim.run(&mut w);
        assert_eq!(w.fired_at, Some(SimTime::from_millis(5)));
    }

    #[test]
    fn profiling_counts_events_per_kind() {
        let mut sim = Simulator::new(1);
        sim.enable_profiling(ProfileConfig {
            queue_depth_every: 1,
            events_per_sim_sec: true,
            wall_timer: false,
        });
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        sim.run(&mut w);
        assert_eq!(sim.metrics().counter("engine.events.ping"), 4);
        assert_eq!(sim.metrics().counter("engine.events.stop"), 0);
        let depth = sim
            .metrics()
            .time_series("engine.queue_depth")
            .expect("series");
        assert_eq!(depth.len(), 4);
        let eps = sim
            .metrics()
            .time_series("engine.events_per_sec")
            .expect("series");
        assert!(!eps.is_empty());
        assert!(sim.profile_wall_secs().is_none(), "wall timer is opt-in");
    }

    #[test]
    fn world_trace_events_carry_sim_time() {
        let mut sim = Simulator::new(1);
        sim.set_tracer(Tracer::buffered(TraceLevel::Trace));
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        sim.run(&mut w);
        let tracer = sim.take_tracer();
        let pings: Vec<_> = tracer
            .events()
            .into_iter()
            .filter(|e| e.component == "echo")
            .collect();
        assert_eq!(pings.len(), 4);
        assert_eq!(pings[0].t, SimTime::from_millis(1));
        assert_eq!(pings[3].t, SimTime::from_millis(31));
        // Engine dispatch events interleave at Trace level.
        assert!(tracer
            .events()
            .iter()
            .any(|e| e.component == "engine" && e.kind == "dispatch"));
        // Tracer was swapped out for a disabled one.
        assert!(!sim.tracer().is_active());
    }

    #[test]
    fn provenance_propagates_through_the_event_queue() {
        // A root event opens a span, anchors a cause, and schedules a
        // follow-up; the follow-up's trace events must carry the span and
        // cause through the queue, while a root-scheduled sibling stays
        // provenance-free.
        enum E3 {
            Root,
            Child,
            Fresh,
        }
        struct P;
        impl World<E3> for P {
            fn handle(&mut self, ev: E3, ctx: &mut Ctx<'_, E3>) {
                match ev {
                    E3::Root => {
                        let span = ctx.tracer.alloc_span();
                        ctx.tracer.set_span(Some(span));
                        let anchor = ctx.trace("echo", TraceLevel::Debug, "open", |_| {});
                        ctx.tracer.set_cause(anchor);
                        ctx.schedule_in(SimTime::from_millis(1), E3::Child);
                        ctx.schedule_in_root(SimTime::from_millis(2), E3::Fresh);
                    }
                    E3::Child => {
                        ctx.trace("echo", TraceLevel::Debug, "child", |_| {});
                    }
                    E3::Fresh => {
                        ctx.trace("echo", TraceLevel::Debug, "fresh", |_| {});
                    }
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.set_tracer(Tracer::buffered(TraceLevel::Debug));
        sim.schedule_at(SimTime::ZERO, E3::Root);
        sim.run(&mut P);
        let tracer = sim.take_tracer();
        let evs = tracer.events();
        assert_eq!(evs.len(), 3);
        let open = evs[0];
        assert_eq!(open.kind, "open");
        assert_eq!(open.span, Some(0));
        let child = evs[1];
        assert_eq!(child.kind, "child");
        assert_eq!(child.span, Some(0), "span rode through the queue");
        assert_eq!(
            child.cause,
            Some(open.seq),
            "cause anchors to the open event"
        );
        let fresh = evs[2];
        assert_eq!(fresh.kind, "fresh");
        assert_eq!(
            (fresh.span, fresh.cause),
            (None, None),
            "root reschedule resets"
        );
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn trace(seed: u64) -> Vec<(SimTime, u32)> {
            struct R;
            enum E {
                Step(u32),
            }
            impl World<E> for R {
                fn handle(&mut self, E::Step(n): E, ctx: &mut Ctx<'_, E>) {
                    if n < 50 {
                        let d = SimTime::from_micros(ctx.rng.range(1, 1000));
                        ctx.schedule_in(d, E::Step(n + 1));
                        ctx.metrics.record("step", n as f64);
                    }
                }
            }
            let mut sim = Simulator::new(seed);
            sim.schedule_at(SimTime::ZERO, E::Step(0));
            let mut w = R;
            sim.run(&mut w);
            vec![(sim.now(), sim.metrics().counter("x") as u32)]
        }
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
