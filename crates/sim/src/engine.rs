//! The simulation driver.
//!
//! [`Simulator`] owns the clock, the event queue, the RNG and the metrics
//! registry. A protocol crate supplies a [`World`] implementation; the engine
//! pops events in deterministic order and hands each to the world together
//! with a [`Ctx`] through which the world schedules follow-up events.

use crate::event::EventQueue;
use crate::metrics::Metrics;
use crate::rng::SimRng;
use crate::time::SimTime;

/// A protocol state machine driven by the engine.
pub trait World<E> {
    /// Handles one event. `ctx` exposes the clock, scheduling, randomness and
    /// metrics.
    fn handle(&mut self, event: E, ctx: &mut Ctx<'_, E>);
}

/// Engine services exposed to the world while it handles an event.
pub struct Ctx<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    /// Deterministic random number generator for this run.
    pub rng: &'a mut SimRng,
    /// Metrics registry for this run.
    pub metrics: &'a mut Metrics,
    stop: &'a mut bool,
}

impl<'a, E> Ctx<'a, E> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` after `delay`.
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedules `event` at absolute time `at`; clamped to "now" if in the
    /// past so causality is never violated.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// Requests the run to stop after the current event.
    pub fn stop(&mut self) {
        *self.stop = true;
    }

    /// Number of events currently pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }
}

/// Summary of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events processed.
    pub events_processed: u64,
    /// Simulated time at which the run ended.
    pub end_time: SimTime,
    /// Whether the run ended because the world called [`Ctx::stop`].
    pub stopped_early: bool,
}

/// The discrete-event simulator.
pub struct Simulator<E> {
    queue: EventQueue<E>,
    now: SimTime,
    rng: SimRng,
    metrics: Metrics,
    events_processed: u64,
    /// Hard cap on processed events; guards against protocol bugs that
    /// generate unbounded event storms. Default: 500 million.
    pub event_limit: u64,
}

impl<E> Simulator<E> {
    /// Creates a simulator with the given seed.
    pub fn new(seed: u64) -> Self {
        Simulator {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            rng: SimRng::new(seed),
            metrics: Metrics::new(),
            events_processed: 0,
            event_limit: 500_000_000,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules an event at an absolute time before the run starts (or
    /// between runs).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        self.queue.push(at.max(self.now), event);
    }

    /// The RNG, for pre-run setup draws.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// The metrics registry.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable metrics registry (for setup-time accounting and quantiles).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Consumes the simulator, returning its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    /// Runs until the queue is empty or the world stops the run.
    pub fn run<W: World<E>>(&mut self, world: &mut W) -> RunStats {
        self.run_until(world, SimTime::MAX)
    }

    /// Runs until `deadline` (inclusive of events at the deadline), the queue
    /// empties, or the world stops the run.
    pub fn run_until<W: World<E>>(&mut self, world: &mut W, deadline: SimTime) -> RunStats {
        let mut stopped = false;
        while let Some(t) = self.queue.peek_time() {
            if t > deadline {
                break;
            }
            if self.events_processed >= self.event_limit {
                // Deliberate abort: a runaway event storm means the world is
                // livelocked and no useful result exists. lint:allow(panic)
                panic!(
                    "event limit {} exceeded at t={} — runaway event storm?",
                    self.event_limit, self.now
                );
            }
            let (t, ev) = self.queue.pop().expect("peeked event vanished"); // lint:allow(expect)
            debug_assert!(t >= self.now, "event queue delivered out of order");
            self.now = t;
            self.events_processed += 1;
            let mut ctx = Ctx {
                now: self.now,
                queue: &mut self.queue,
                rng: &mut self.rng,
                metrics: &mut self.metrics,
                stop: &mut stopped,
            };
            world.handle(ev, &mut ctx);
            if stopped {
                break;
            }
        }
        if !stopped && self.now < deadline && deadline != SimTime::MAX {
            // Queue drained before the deadline: advance the clock so
            // rate-style metrics (bytes/sec over the run) are well defined.
            self.now = deadline;
        }
        RunStats {
            events_processed: self.events_processed,
            end_time: self.now,
            stopped_early: stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        Ping(u32),
        Stop,
    }

    struct Echo {
        seen: Vec<(SimTime, u32)>,
    }

    impl World<Ev> for Echo {
        fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
            match ev {
                Ev::Ping(n) => {
                    self.seen.push((ctx.now(), n));
                    ctx.metrics.incr("ping", 1);
                    if n < 3 {
                        ctx.schedule_in(SimTime::from_millis(10), Ev::Ping(n + 1));
                    }
                }
                Ev::Stop => ctx.stop(),
            }
        }
    }

    #[test]
    fn chain_of_events_advances_clock() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run(&mut w);
        assert_eq!(stats.events_processed, 4);
        assert_eq!(w.seen.len(), 4);
        assert_eq!(w.seen[3], (SimTime::from_millis(31), 3));
        assert_eq!(sim.metrics().counter("ping"), 4);
        assert!(!stats.stopped_early);
    }

    #[test]
    fn stop_halts_immediately() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Stop);
        sim.schedule_at(SimTime::from_millis(2), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run(&mut w);
        assert!(stats.stopped_early);
        assert!(w.seen.is_empty());
    }

    #[test]
    fn deadline_cuts_off_and_advances_clock() {
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(1), Ev::Ping(0));
        let mut w = Echo { seen: vec![] };
        let stats = sim.run_until(&mut w, SimTime::from_millis(15));
        // Pings at 1ms and 11ms fire; 21ms is beyond the deadline.
        assert_eq!(w.seen.len(), 2);
        assert_eq!(stats.end_time, SimTime::from_millis(15));
    }

    #[test]
    fn past_events_clamp_to_now() {
        struct Clamper {
            fired_at: Option<SimTime>,
        }
        enum E2 {
            First,
            Late,
        }
        impl World<E2> for Clamper {
            fn handle(&mut self, ev: E2, ctx: &mut Ctx<'_, E2>) {
                match ev {
                    E2::First => ctx.schedule_at(SimTime::ZERO, E2::Late),
                    E2::Late => self.fired_at = Some(ctx.now()),
                }
            }
        }
        let mut sim = Simulator::new(1);
        sim.schedule_at(SimTime::from_millis(5), E2::First);
        let mut w = Clamper { fired_at: None };
        sim.run(&mut w);
        assert_eq!(w.fired_at, Some(SimTime::from_millis(5)));
    }

    #[test]
    fn identical_seeds_identical_runs() {
        fn trace(seed: u64) -> Vec<(SimTime, u32)> {
            struct R;
            enum E {
                Step(u32),
            }
            impl World<E> for R {
                fn handle(&mut self, E::Step(n): E, ctx: &mut Ctx<'_, E>) {
                    if n < 50 {
                        let d = SimTime::from_micros(ctx.rng.range(1, 1000));
                        ctx.schedule_in(d, E::Step(n + 1));
                        ctx.metrics.record("step", n as f64);
                    }
                }
            }
            let mut sim = Simulator::new(seed);
            sim.schedule_at(SimTime::ZERO, E::Step(0));
            let mut w = R;
            sim.run(&mut w);
            vec![(sim.now(), sim.metrics().counter("x") as u32)]
        }
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
