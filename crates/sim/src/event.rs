//! The pending-event queue.
//!
//! A thin wrapper over `BinaryHeap` that delivers events in `(time, seq)`
//! order: earliest timestamp first, and among equal timestamps, insertion
//! order. The sequence number is what makes simulations deterministic — two
//! events scheduled for the same instant are never reordered by heap
//! internals.

use crate::time::SimTime;
use crate::trace::Provenance;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
    /// Causal provenance captured when the event was scheduled; restored
    /// as the tracer's ambient provenance when the event is dispatched,
    /// so spans and cause anchors ride along with messages.
    prov: Provenance,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `event` at absolute time `time` with root (empty)
    /// provenance.
    pub fn push(&mut self, time: SimTime, event: E) {
        self.push_with(time, event, Provenance::ROOT);
    }

    /// Schedules `event` at absolute time `time`, carrying `prov` so the
    /// dispatching engine can restore the scheduler's causal context.
    pub fn push_with(&mut self, time: SimTime, event: E, prov: Provenance) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time,
            seq,
            event,
            prov,
        });
    }

    /// Removes and returns the earliest event, or `None` if empty.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.time, e.event))
    }

    /// Like [`EventQueue::pop`], but also returns the provenance the
    /// event was scheduled with.
    pub fn pop_full(&mut self) -> Option<(SimTime, E, Provenance)> {
        self.heap.pop().map(|e| (e.time, e.event, e.prov))
    }

    /// The timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.next_seq
    }

    /// Discards all pending events (sequence numbering continues).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(30), "c");
        q.push(SimTime::from_micros(10), "a");
        q.push(SimTime::from_micros(20), "b");
        assert_eq!(q.pop(), Some((SimTime::from_micros(10), "a")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(20), "b")));
        assert_eq!(q.pop(), Some((SimTime::from_micros(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.push(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn peek_does_not_consume() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_micros(7), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn provenance_rides_along_with_events() {
        let mut q = EventQueue::new();
        let p = Provenance {
            span: Some(4),
            cause: Some(9),
        };
        q.push_with(SimTime::from_micros(2), "b", p);
        q.push(SimTime::from_micros(1), "a");
        assert_eq!(
            q.pop_full(),
            Some((SimTime::from_micros(1), "a", Provenance::ROOT))
        );
        assert_eq!(q.pop_full(), Some((SimTime::from_micros(2), "b", p)));
        assert_eq!(q.pop_full(), None);
    }

    #[test]
    fn clear_keeps_sequence_monotone() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1u32);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.scheduled_total(), 1);
        q.push(SimTime::ZERO, 2u32);
        assert_eq!(q.scheduled_total(), 2);
    }
}
