//! # uap-sim — deterministic discrete-event simulation engine
//!
//! Foundation crate of the `underlay-p2p` workspace. Every experiment in the
//! reproduction of *Underlay Awareness in P2P Systems* (Abboud et al., IPDPS
//! 2009) runs on this engine.
//!
//! Design goals:
//!
//! * **Determinism.** A run is a pure function of its configuration and a
//!   single `u64` seed. The event queue breaks timestamp ties by insertion
//!   sequence number, and all randomness flows through [`SimRng`].
//! * **Protocol-agnostic.** The engine is generic over the event type; each
//!   overlay crate defines its own event enum and a [`World`] implementation.
//! * **Measurable.** A [`Metrics`] registry collects counters, histograms and
//!   time series that the experiment harnesses turn into the paper's tables.
//!
//! ```
//! use uap_sim::{Simulator, World, Ctx, SimTime};
//!
//! struct Counter(u64);
//! enum Ev { Tick }
//!
//! impl World<Ev> for Counter {
//!     fn handle(&mut self, ev: Ev, ctx: &mut Ctx<'_, Ev>) {
//!         match ev {
//!             Ev::Tick => {
//!                 self.0 += 1;
//!                 if self.0 < 10 {
//!                     ctx.schedule_in(SimTime::from_millis(5), Ev::Tick);
//!                 }
//!             }
//!         }
//!     }
//! }
//!
//! let mut sim = Simulator::new(42);
//! sim.schedule_at(SimTime::ZERO, Ev::Tick);
//! let mut world = Counter(0);
//! sim.run(&mut world);
//! assert_eq!(world.0, 10);
//! assert_eq!(sim.now(), SimTime::from_millis(45));
//! ```

#![forbid(unsafe_code)]

pub mod churn;
pub mod detmap;
pub mod engine;
pub mod event;
pub mod metrics;
pub mod rng;
pub mod runreport;
pub mod time;
pub mod trace;

pub use churn::{ChurnConfig, ChurnModel, SessionDist};
pub use detmap::{DetMap, DetSet};
pub use engine::{Ctx, ProfileConfig, RunStats, Simulator, World};
pub use event::EventQueue;
pub use metrics::{Histogram, Metrics, TimeSeries};
pub use rng::{SimRng, Zipf};
pub use runreport::{HistogramSummary, RunReport};
pub use time::SimTime;
pub use trace::{Fields, Provenance, TraceEvent, TraceLevel, Tracer, Value, WallTimer};
