//! Measurement collection.
//!
//! Experiments account for three kinds of observations:
//!
//! * **Counters** — monotonically increasing event counts (messages sent per
//!   type, bytes per link category, …). These are what Table 1 of the paper
//!   reports.
//! * **Histograms** — distributions of scalar samples (download times, lookup
//!   latencies). Quantiles are computed on demand from the retained samples.
//! * **Time series** — `(time, value)` traces (traffic rate over time), used
//!   for the 95th-percentile transit billing of the cost model.

use crate::time::SimTime;
use std::collections::BTreeMap;
use std::fmt;

/// A distribution of `f64` samples with on-demand order statistics.
#[derive(Clone, Default)]
pub struct Histogram {
    samples: Vec<f64>,
    sorted: bool,
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: f64) {
        self.samples.push(v);
        self.sorted = false;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Arithmetic mean, or `None` if empty.
    ///
    /// Computed with [`Histogram::sum`], so the result depends only on the
    /// multiset of samples — not on the order they were recorded in.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum() / self.samples.len() as f64)
        }
    }

    /// Sum of all samples, as a stable sequential sum over the *sorted*
    /// samples.
    ///
    /// Float addition is not associative, so a naive insertion-order sum
    /// makes two logically-equal runs that record in different orders
    /// report different bits — breaking the byte-identical run-report
    /// contract. Sorting first (by `total_cmp`) fixes the evaluation
    /// order as a function of the sample multiset alone.
    // lint:allow(alloc) — report-time stable sum needs a sorted copy (&self)
    pub fn sum(&self) -> f64 {
        let mut acc = 0.0;
        if self.sorted {
            for &v in &self.samples {
                acc += v;
            }
        } else {
            let mut sorted = self.samples.clone();
            sorted.sort_by(f64::total_cmp);
            for v in sorted {
                acc += v;
            }
        }
        acc
    }

    /// Minimum sample, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::min)
    }

    /// Maximum sample, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.samples.iter().copied().reduce(f64::max)
    }

    /// The `q`-quantile (`0.0 ..= 1.0`) using the nearest-rank method, or
    /// `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        if !self.sorted {
            self.samples.sort_by(|a, b| a.total_cmp(b));
            self.sorted = true;
        }
        let q = q.clamp(0.0, 1.0);
        let n = self.samples.len();
        // Nearest-rank: smallest value with at least ceil(q*n) samples <= it.
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(self.samples[rank - 1])
    }

    /// Median (50th percentile).
    pub fn median(&mut self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Immutable view of the raw samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Histogram(n={}, mean={:?})",
            self.samples.len(),
            self.mean()
        )
    }
}

/// A `(time, value)` trace.
#[derive(Clone, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a point; times should be non-decreasing.
    pub fn push(&mut self, t: SimTime, v: f64) {
        self.points.push((t, v));
    }

    /// The recorded points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Buckets values into windows of `width` and returns per-window sums.
    /// Used for 5-minute traffic sampling in the transit billing model.
    pub fn bucket_sums(&self, width: SimTime) -> Vec<f64> {
        assert!(width.as_micros() > 0);
        let mut out: Vec<f64> = Vec::new();
        for &(t, v) in &self.points {
            let idx = (t.as_micros() / width.as_micros()) as usize;
            if out.len() <= idx {
                out.resize(idx + 1, 0.0);
            }
            out[idx] += v;
        }
        out
    }
}

/// The metrics registry handed to every simulation world.
///
/// Counter and histogram names are plain strings; experiments use stable,
/// namespaced names such as `"gnutella.msg.ping"` or `"net.bytes.transit"`.
#[derive(Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    series: BTreeMap<String, TimeSeries>,
}

impl Metrics {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// Adds `n` to the named counter.
    pub fn incr(&mut self, name: &str, n: u64) {
        #[cfg(debug_assertions)]
        crate::trace::registry::debug_check_metric_key(name);
        match self.counters.get_mut(name) {
            Some(c) => *c += n,
            None => {
                self.counters.insert(name.to_owned(), n);
            }
        }
    }

    /// Sets the named counter to an absolute value, overwriting any
    /// previous value. Used to export externally-accumulated counters
    /// (e.g. the underlay route-cache hit/miss cells) at end of run.
    pub fn set_counter(&mut self, name: &str, v: u64) {
        #[cfg(debug_assertions)]
        crate::trace::registry::debug_check_metric_key(name);
        self.counters.insert(name.to_owned(), v);
    }

    /// Current value of a counter (zero if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Records a sample into the named histogram.
    pub fn record(&mut self, name: &str, v: f64) {
        #[cfg(debug_assertions)]
        crate::trace::registry::debug_check_metric_key(name);
        match self.histograms.get_mut(name) {
            Some(h) => h.record(v),
            None => {
                let mut h = Histogram::new();
                h.record(v);
                self.histograms.insert(name.to_owned(), h);
            }
        }
    }

    /// The named histogram, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Mutable access (needed for quantiles, which sort lazily).
    pub fn histogram_mut(&mut self, name: &str) -> Option<&mut Histogram> {
        self.histograms.get_mut(name)
    }

    /// All histograms, sorted by name, with mutable access so summaries
    /// can take quantiles (which sort lazily).
    pub fn histograms_mut(&mut self) -> impl Iterator<Item = (&str, &mut Histogram)> {
        self.histograms.iter_mut().map(|(k, h)| (k.as_str(), h))
    }

    /// Appends a point to the named time series.
    pub fn trace(&mut self, name: &str, t: SimTime, v: f64) {
        #[cfg(debug_assertions)]
        crate::trace::registry::debug_check_metric_key(name);
        match self.series.get_mut(name) {
            Some(s) => s.push(t, v),
            None => {
                let mut s = TimeSeries::new();
                s.push(t, v);
                self.series.insert(name.to_owned(), s);
            }
        }
    }

    /// The named time series, if any point was recorded.
    pub fn time_series(&self, name: &str) -> Option<&TimeSeries> {
        self.series.get(name)
    }

    /// All time series, sorted by name.
    pub fn all_series(&self) -> impl Iterator<Item = (&str, &TimeSeries)> {
        self.series.iter().map(|(k, s)| (k.as_str(), s))
    }

    /// Merges another registry into this one (counters add; samples and
    /// points append). Used when aggregating parallel sweep shards.
    pub fn merge(&mut self, other: &Metrics) {
        for (k, v) in &other.counters {
            self.incr(k, *v);
        }
        for (k, h) in &other.histograms {
            for &s in h.samples() {
                self.record(k, s);
            }
        }
        for (k, s) in &other.series {
            for &(t, v) in s.points() {
                self.trace(k, t, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("a", 2);
        m.incr("a", 3);
        assert_eq!(m.counter("a"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [4.0, 1.0, 3.0, 2.0, 5.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.mean(), Some(3.0));
        assert_eq!(h.min(), Some(1.0));
        assert_eq!(h.max(), Some(5.0));
        assert_eq!(h.median(), Some(3.0));
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
    }

    #[test]
    fn nearest_rank_95th() {
        let mut h = Histogram::new();
        for i in 1..=100 {
            h.record(i as f64);
        }
        assert_eq!(h.quantile(0.95), Some(95.0));
    }

    #[test]
    fn nearest_rank_pins_small_n_edge_cases() {
        // Regression fixture for the nearest-rank method: the smallest
        // value with at least ceil(q*n) samples at or below it. These
        // exact answers are what `RunReport` serializes, so changing the
        // method shows up here before it shows up as trace-diff churn.
        let mut one = Histogram::new();
        one.record(7.0);
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(one.quantile(q), Some(7.0), "n=1, q={q}");
        }

        let mut two = Histogram::new();
        two.record(10.0);
        two.record(20.0);
        assert_eq!(two.quantile(0.5), Some(10.0)); // ceil(0.5*2)=1 → 1st
        assert_eq!(two.quantile(0.51), Some(20.0)); // ceil(1.02)=2 → 2nd
        assert_eq!(two.quantile(0.99), Some(20.0));

        let mut ten = Histogram::new();
        for i in 1..=10 {
            ten.record(i as f64);
        }
        assert_eq!(ten.quantile(0.50), Some(5.0));
        assert_eq!(ten.quantile(0.90), Some(9.0));
        assert_eq!(ten.quantile(0.95), Some(10.0)); // ceil(9.5)=10
        assert_eq!(ten.quantile(0.99), Some(10.0));
    }

    #[test]
    fn quantiles_are_insertion_order_independent() {
        let build = |order: &[f64]| {
            let mut h = Histogram::new();
            for &v in order {
                h.record(v);
            }
            [0.5, 0.9, 0.95, 0.99].map(|q| h.quantile(q).unwrap())
        };
        let asc: Vec<f64> = (1..=97).map(f64::from).collect();
        let mut desc = asc.clone();
        desc.reverse();
        // Interleave from both ends for a third shuffle-free permutation.
        let mixed: Vec<f64> = asc
            .iter()
            .zip(desc.iter())
            .flat_map(|(&a, &b)| [a, b])
            .take(asc.len())
            .collect();
        assert_eq!(build(&asc), build(&desc));
        assert_eq!(build(&asc), build(&mixed));
    }

    #[test]
    fn empty_histogram_returns_none() {
        let mut h = Histogram::new();
        assert_eq!(h.mean(), None);
        assert_eq!(h.quantile(0.5), None);
        assert!(h.is_empty());
    }

    #[test]
    fn record_after_quantile_resorts() {
        let mut h = Histogram::new();
        h.record(10.0);
        assert_eq!(h.median(), Some(10.0));
        h.record(1.0);
        h.record(2.0);
        assert_eq!(h.median(), Some(2.0));
    }

    #[test]
    fn sum_and_mean_are_insertion_order_independent() {
        // Regression: 1e16 + (-1e16) + 1.0 evaluates to 1.0 in one order
        // and 0.0 in another under naive left-to-right accumulation. The
        // sorted stable sum must give bit-identical results for any
        // recording order of the same multiset.
        let orders: [&[f64]; 3] = [
            &[1e16, -1e16, 1.0],
            &[1e16, 1.0, -1e16],
            &[1.0, 1e16, -1e16],
        ];
        let sums: Vec<u64> = orders
            .iter()
            .map(|o| {
                let mut h = Histogram::new();
                for &v in *o {
                    h.record(v);
                }
                h.sum().to_bits()
            })
            .collect();
        assert_eq!(sums[0], sums[1]);
        assert_eq!(sums[1], sums[2]);
        let means: Vec<u64> = orders
            .iter()
            .map(|o| {
                let mut h = Histogram::new();
                for &v in *o {
                    h.record(v);
                }
                h.mean().map(f64::to_bits).unwrap_or(0)
            })
            .collect();
        assert_eq!(means[0], means[1]);
        assert_eq!(means[1], means[2]);
    }

    #[test]
    fn sum_agrees_whether_sorted_lazily_or_not() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [3.5, -1.25, 7.0, 0.5] {
            a.record(v);
            b.record(v);
        }
        // Force `b` into the sorted state via a quantile query.
        let _ = b.median();
        assert_eq!(a.sum().to_bits(), b.sum().to_bits());
    }

    #[test]
    fn series_bucketing() {
        let mut s = TimeSeries::new();
        s.push(SimTime::from_secs(1), 10.0);
        s.push(SimTime::from_secs(2), 5.0);
        s.push(SimTime::from_secs(61), 7.0);
        let sums = s.bucket_sums(SimTime::from_secs(60));
        assert_eq!(sums, vec![15.0, 7.0]);
    }

    #[test]
    fn merge_combines_everything() {
        let mut a = Metrics::new();
        a.incr("c", 1);
        a.record("h", 1.0);
        a.trace("t", SimTime::ZERO, 1.0);
        let mut b = Metrics::new();
        b.incr("c", 2);
        b.record("h", 3.0);
        b.trace("t", SimTime::from_secs(1), 2.0);
        a.merge(&b);
        assert_eq!(a.counter("c"), 3);
        assert_eq!(a.histogram("h").unwrap().count(), 2);
        assert_eq!(a.time_series("t").unwrap().len(), 2);
    }
}
