//! Deterministic random number generation.
//!
//! All stochastic choices in the workspace flow through [`SimRng`], a thin
//! convenience layer over a seeded [`rand::rngs::StdRng`]. Besides the usual
//! uniform draws it provides the distributions the experiments need: the
//! exponential and Pareto session lengths of the churn model, and Zipf
//! content popularity.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// A seeded random number generator with simulation-oriented helpers.
pub struct SimRng {
    inner: StdRng,
    seed: u64,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this generator was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent generator; used to give sub-systems their own
    /// streams so adding draws in one place does not perturb another.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let s = self
            .inner
            .gen::<u64>()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(stream);
        SimRng::new(s)
    }

    /// Uniform `u64` in `[0, bound)`. Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `usize` in `[0, bound)`. Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.inner.gen_range(0..bound)
    }

    /// Uniform `u64` in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn f64_range(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen_bool(p)
        }
    }

    /// Raw `u64`.
    pub fn u64(&mut self) -> u64 {
        self.inner.gen()
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    /// If `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        let i = self.index(items.len());
        items.get(i).expect("pick requires a non-empty slice") // lint:allow(expect)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        items.shuffle(&mut self.inner);
    }

    /// Samples `k` distinct indices from `[0, n)` (all of them if `k >= n`),
    /// in random order.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let k = k.min(n);
        // Partial Fisher–Yates over an index vector: O(n) setup, O(k) draws.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.inner.gen_range(i..n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        idx
    }

    /// Exponentially distributed draw with the given mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        debug_assert!(mean > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        -mean * u.ln()
    }

    /// Pareto-distributed draw with scale `x_m > 0` and shape `alpha > 0`.
    /// Heavy-tailed; used for peer session lengths.
    pub fn pareto(&mut self, x_m: f64, alpha: f64) -> f64 {
        debug_assert!(x_m > 0.0 && alpha > 0.0);
        let u: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        x_m / u.powf(1.0 / alpha)
    }

    /// Standard normal draw (Box–Muller).
    pub fn normal(&mut self, mean: f64, stddev: f64) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        mean + stddev * z
    }
}

/// Precomputed Zipf distribution over ranks `0..n`.
///
/// Rank `r` (0-based) is drawn with probability proportional to
/// `1 / (r + 1)^s`. Content popularity in file-sharing workloads is
/// classically Zipf-like, which is what gives locality-aware source
/// selection something to exploit.
#[derive(Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution for `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf over zero ranks");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("cdf has n >= 1 entries"); // lint:allow(expect)
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution is over zero ranks (never true).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `[0, n)`.
    pub fn sample(&self, rng: &mut SimRng) -> usize {
        let u = rng.f64();
        match self.cdf.binary_search_by(|p| p.total_cmp(&u)) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of rank `r`.
    pub fn pmf(&self, r: usize) -> f64 {
        if r == 0 {
            self.cdf[0]
        } else {
            self.cdf[r] - self.cdf[r - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..32).filter(|_| a.u64() == b.u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut a = SimRng::new(99);
        let mut b = SimRng::new(99);
        let mut fa = a.fork(1);
        let mut fb = b.fork(1);
        for _ in 0..32 {
            assert_eq!(fa.u64(), fb.u64());
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn sample_indices_distinct_and_bounded() {
        let mut r = SimRng::new(11);
        let s = r.sample_indices(50, 20);
        assert_eq!(s.len(), 20);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 20);
        assert!(sorted.iter().all(|&i| i < 50));
        // Requesting more than available returns everything.
        assert_eq!(r.sample_indices(5, 100).len(), 5);
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = SimRng::new(5);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exp(10.0)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.5, "mean {mean}");
    }

    #[test]
    fn pareto_respects_scale() {
        let mut r = SimRng::new(6);
        for _ in 0..1_000 {
            assert!(r.pareto(2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::new(8);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn zipf_is_monotone_decreasing() {
        let z = Zipf::new(100, 0.9);
        for r in 1..100 {
            assert!(z.pmf(r) <= z.pmf(r - 1) + 1e-12);
        }
        let total: f64 = (0..100).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_sampling_tracks_pmf() {
        let z = Zipf::new(10, 1.0);
        let mut r = SimRng::new(12);
        let mut counts = [0u32; 10];
        let n = 50_000;
        for _ in 0..n {
            counts[z.sample(&mut r)] += 1;
        }
        for (rank, &count) in counts.iter().enumerate() {
            let emp = count as f64 / n as f64;
            assert!(
                (emp - z.pmf(rank)).abs() < 0.01,
                "rank {rank}: emp {emp} pmf {}",
                z.pmf(rank)
            );
        }
    }
}
