//! Structured end-of-run reports.
//!
//! A [`RunReport`] is the machine-readable companion of an experiment's
//! CSV tables: one JSON document capturing the configuration, the seed,
//! every counter, histogram summaries (count/sum/mean/min/max and the
//! p50/p90/p95/p99 quantiles), and the recorded time series.
//!
//! The serialization is deliberately **one leaf per line** with keys in a
//! fixed order, so that
//!
//! * two same-seed runs produce byte-identical files, and
//! * `cargo run -p xtask -- trace diff a.report.json b.report.json` can
//!   localize a divergence to a single line.
//!
//! The only non-deterministic datum a report may carry is the wall-clock
//! duration stamped by [`crate::trace::WallTimer`]; it serializes under
//! the key `wall_secs`, and the diff tool skips every line whose key
//! starts with `wall` so reports still compare clean across runs.

use crate::metrics::Metrics;
use crate::time::SimTime;
use crate::trace::{escape_into, Value};
use std::io;
use std::path::Path;

/// Deterministic summary of one histogram for the report.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSummary {
    /// Metric name.
    pub name: String,
    /// Sample count.
    pub count: usize,
    /// Stable sorted sum (see [`crate::metrics::Histogram::sum`]).
    pub sum: f64,
    /// Mean.
    pub mean: f64,
    /// Minimum sample.
    pub min: f64,
    /// Maximum sample.
    pub max: f64,
    /// Nearest-rank quantiles at 0.50 / 0.90 / 0.95 / 0.99.
    pub quantiles: [f64; 4],
}

/// A machine-readable end-of-run report. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct RunReport {
    /// Experiment identifier (e.g. `exp04_message_counts`).
    pub experiment: String,
    /// The run's root seed.
    pub seed: u64,
    /// Total simulation events (or rounds) processed, if known.
    pub events: u64,
    /// Simulated end time, if known.
    pub end_time: SimTime,
    /// Configuration key/values, in insertion order.
    pub config: Vec<(String, String)>,
    /// Headline result values (table cells etc.), in insertion order.
    pub values: Vec<(String, String)>,
    /// Counter snapshot, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Histogram summaries, sorted by name.
    pub histograms: Vec<HistogramSummary>,
    /// Time series, sorted by name; points are `(micros, value)`.
    pub series: Vec<(String, Vec<(u64, f64)>)>,
    /// Wall-clock duration of the run. Excluded from determinism
    /// comparison — this is the only field allowed to differ between
    /// same-seed runs.
    pub wall_secs: Option<f64>,
}

impl RunReport {
    /// Creates an empty report for `experiment` run with `seed`.
    pub fn new(experiment: impl Into<String>, seed: u64) -> RunReport {
        RunReport {
            experiment: experiment.into(),
            seed,
            ..RunReport::default()
        }
    }

    /// Records one configuration key/value.
    pub fn config(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.config.push((key.into(), value.to_string()));
        self
    }

    /// Records one headline result value.
    pub fn value(&mut self, key: impl Into<String>, value: impl ToString) -> &mut Self {
        self.values.push((key.into(), value.to_string()));
        self
    }

    /// Absorbs a metrics registry: counters, histogram summaries and time
    /// series. Needs `&mut Metrics` because quantiles sort lazily.
    pub fn absorb_metrics(&mut self, metrics: &mut Metrics) -> &mut Self {
        for (name, v) in metrics.counters() {
            self.counters.push((name.to_owned(), v));
        }
        for (name, h) in metrics.histograms_mut() {
            if h.is_empty() {
                continue;
            }
            let quantiles = [0.50, 0.90, 0.95, 0.99].map(|q| h.quantile(q).unwrap_or(f64::NAN));
            self.histograms.push(HistogramSummary {
                name: name.to_owned(),
                count: h.count(),
                sum: h.sum(),
                mean: h.mean().unwrap_or(f64::NAN),
                min: h.min().unwrap_or(f64::NAN),
                max: h.max().unwrap_or(f64::NAN),
                quantiles,
            });
        }
        for (name, s) in metrics.all_series() {
            self.series.push((
                name.to_owned(),
                s.points()
                    .iter()
                    .map(|&(t, v)| (t.as_micros(), v))
                    .collect(),
            ));
        }
        self
    }

    /// Serializes the report as deterministic pretty-printed JSON (one
    /// leaf per line, fixed key order, trailing newline).
    pub fn to_json(&self) -> String {
        let mut o = String::with_capacity(1024);
        o.push_str("{\n");
        o.push_str("  \"experiment\": ");
        push_str_value(&mut o, &self.experiment);
        o.push_str(",\n  \"seed\": ");
        o.push_str(&self.seed.to_string());
        o.push_str(",\n  \"events\": ");
        o.push_str(&self.events.to_string());
        o.push_str(",\n  \"end_time_us\": ");
        o.push_str(&self.end_time.as_micros().to_string());
        o.push_str(",\n  \"config\": {");
        push_string_map(&mut o, &self.config);
        o.push_str("},\n  \"values\": {");
        push_string_map(&mut o, &self.values);
        o.push_str("},\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    ");
            push_str_value(&mut o, k);
            o.push_str(": ");
            o.push_str(&v.to_string());
        }
        if !self.counters.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("},\n  \"histograms\": {");
        for (i, h) in self.histograms.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    ");
            push_str_value(&mut o, &h.name);
            o.push_str(": {\"count\": ");
            o.push_str(&h.count.to_string());
            for (key, v) in [
                ("sum", h.sum),
                ("mean", h.mean),
                ("min", h.min),
                ("max", h.max),
                ("p50", h.quantiles[0]),
                ("p90", h.quantiles[1]),
                ("p95", h.quantiles[2]),
                ("p99", h.quantiles[3]),
            ] {
                o.push_str(", \"");
                o.push_str(key);
                o.push_str("\": ");
                Value::F64(v).write_json_value(&mut o);
            }
            o.push('}');
        }
        if !self.histograms.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("},\n  \"series\": {");
        for (i, (name, pts)) in self.series.iter().enumerate() {
            o.push_str(if i == 0 { "\n" } else { ",\n" });
            o.push_str("    ");
            push_str_value(&mut o, name);
            o.push_str(": [");
            for (j, (t, v)) in pts.iter().enumerate() {
                if j > 0 {
                    o.push_str(", ");
                }
                o.push('[');
                o.push_str(&t.to_string());
                o.push_str(", ");
                Value::F64(*v).write_json_value(&mut o);
                o.push(']');
            }
            o.push(']');
        }
        if !self.series.is_empty() {
            o.push_str("\n  ");
        }
        o.push_str("},\n  \"wall_secs\": ");
        match self.wall_secs {
            Some(w) => Value::F64(w).write_json_value(&mut o),
            None => o.push_str("null"),
        }
        o.push_str("\n}\n");
        o
    }

    /// Writes the report JSON to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn push_str_value(o: &mut String, s: &str) {
    o.push('"');
    escape_into(s, o);
    o.push('"');
}

fn push_string_map(o: &mut String, entries: &[(String, String)]) {
    for (i, (k, v)) in entries.iter().enumerate() {
        o.push_str(if i == 0 { "\n" } else { ",\n" });
        o.push_str("    ");
        push_str_value(o, k);
        o.push_str(": ");
        push_str_value(o, v);
    }
    if !entries.is_empty() {
        o.push_str("\n  ");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(wall: Option<f64>) -> RunReport {
        let mut m = Metrics::new();
        m.incr("msg.ping", 7);
        m.incr("msg.query", 3);
        m.record("latency_us", 100.0);
        m.record("latency_us", 300.0);
        m.record("latency_us", 200.0);
        m.trace("rate", SimTime::from_secs(1), 2.5);
        m.trace("rate", SimTime::from_secs(2), 3.5);
        let mut r = RunReport::new("exp_test", 42);
        r.events = 10;
        r.end_time = SimTime::from_secs(2);
        r.config("n_hosts", 16).config("mode", "quick");
        r.value("total_msgs", 10);
        r.absorb_metrics(&mut m);
        r.wall_secs = wall;
        r
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample_report(None).to_json(), sample_report(None).to_json());
    }

    #[test]
    fn only_the_wall_line_differs_between_timed_runs() {
        let a = sample_report(Some(1.0)).to_json();
        let b = sample_report(Some(2.0)).to_json();
        let diffs: Vec<(&str, &str)> = a.lines().zip(b.lines()).filter(|(x, y)| x != y).collect();
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].0.trim_start().starts_with("\"wall"));
    }

    #[test]
    fn report_contains_expected_leaves() {
        let j = sample_report(None).to_json();
        assert!(j.contains("\"experiment\": \"exp_test\""));
        assert!(j.contains("\"seed\": 42"));
        assert!(j.contains("\"msg.ping\": 7"));
        assert!(j.contains("\"n_hosts\": \"16\""));
        assert!(j.contains("\"p95\": 300.0"));
        assert!(j.contains("[1000000, 2.5]"));
        assert!(j.contains("\"wall_secs\": null"));
    }

    #[test]
    fn histogram_summary_pins_quantile_leaves() {
        // Regression: the exact nearest-rank p50/p90/p95/p99 leaves for a
        // known 1..=20 dataset, as serialized. ceil(q*20) ranks: 10, 18,
        // 19, 20.
        let mut m = Metrics::new();
        for i in 1..=20 {
            m.record("latency", i as f64);
        }
        let mut r = RunReport::new("q", 1);
        r.absorb_metrics(&mut m);
        let j = r.to_json();
        assert!(j.contains("\"p50\": 10.0"), "{j}");
        assert!(j.contains("\"p90\": 18.0"), "{j}");
        assert!(j.contains("\"p95\": 19.0"), "{j}");
        assert!(j.contains("\"p99\": 20.0"), "{j}");
    }

    #[test]
    fn histogram_summary_is_order_independent() {
        let build = |order: &[f64]| {
            let mut m = Metrics::new();
            for &v in order {
                m.record("h", v);
            }
            let mut r = RunReport::new("x", 1);
            r.absorb_metrics(&mut m);
            r.to_json()
        };
        assert_eq!(build(&[1e16, -1e16, 1.0]), build(&[1.0, 1e16, -1e16]));
    }
}
