//! Simulated time.
//!
//! Time is a `u64` count of microseconds since the start of the run. Integer
//! time keeps event ordering exact and runs reproducible across platforms;
//! microsecond resolution is fine-grained enough for wide-area network
//! latencies (hundreds of microseconds to hundreds of milliseconds).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time (microseconds since simulation start).
///
/// `SimTime` doubles as a duration type: the engine only ever needs
/// differences and sums of time points, and a separate duration type would
/// add noise to every protocol implementation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates a time from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Creates a time from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Creates a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Creates a time from whole minutes.
    pub const fn from_mins(m: u64) -> Self {
        SimTime(m * 60_000_000)
    }

    /// Creates a time from whole hours.
    pub const fn from_hours(h: u64) -> Self {
        SimTime(h * 3_600_000_000)
    }

    /// Creates a time from fractional seconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * 1e6).round() as u64)
    }

    /// Creates a time from fractional milliseconds, rounding to the nearest
    /// microsecond. Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((ms * 1e3).round() as u64)
    }

    /// This time in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This time in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// This time in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating subtraction: `self - other`, or zero if `other > self`.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }

    /// Saturating addition (clamps at [`SimTime::MAX`]).
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Multiplies a duration by an integer factor (saturating).
    #[allow(clippy::should_implement_trait)] // saturating semantics, not ops::Mul
    pub fn mul(self, k: u64) -> SimTime {
        SimTime(self.0.saturating_mul(k))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{}us", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_mins(2), SimTime::from_secs(120));
        assert_eq!(SimTime::from_hours(1), SimTime::from_mins(60));
    }

    #[test]
    fn float_round_trip() {
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimTime::from_millis_f64(0.5).as_micros(), 500);
    }

    #[test]
    fn negative_floats_clamp_to_zero() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_millis_f64(-0.1), SimTime::ZERO);
    }

    #[test]
    fn saturating_ops() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.saturating_sub(b), SimTime::ZERO);
        assert_eq!(b.saturating_sub(a), SimTime::from_secs(1));
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
    }

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::from_micros(999) < SimTime::from_millis(1));
        assert!(SimTime::MAX > SimTime::from_hours(10_000));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", SimTime::from_micros(12)), "12us");
        assert_eq!(format!("{}", SimTime::from_micros(1_500)), "1.500ms");
        assert_eq!(format!("{}", SimTime::from_millis(2_500)), "2.500s");
    }
}
