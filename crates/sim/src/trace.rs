//! Structured, deterministic tracing.
//!
//! A [`Tracer`] collects typed, sim-time-stamped [`TraceEvent`]s from every
//! layer of a run: the engine itself (event dispatch, queue depth), the
//! underlay (per-link traffic, routing decisions), and the overlay
//! substrates (floods, lookup hops, piece exchanges, collection calls).
//! Because every field of every event is a pure function of the run's
//! configuration and seed, **two runs of the same experiment with the same
//! seed must serialize to byte-identical JSONL** — which makes the trace
//! both a debugging artifact and a far finer-grained determinism check
//! than comparing end-of-run reports (`cargo run -p xtask -- trace diff`
//! localizes the *first* diverging event).
//!
//! Design rules:
//!
//! * **No-op by default.** [`Tracer::disabled`] (the `Default`) answers
//!   every [`Tracer::is_enabled`] query with one branch and allocates
//!   nothing; instrumentation sites build their fields inside a closure
//!   that is never called on the disabled path.
//! * **Per-component filtering.** Each component (`"engine"`, `"net"`,
//!   `"gnutella"`, …) can be given its own [`TraceLevel`]; everything else
//!   uses the tracer's default level.
//! * **Bounded memory.** [`Tracer::ring`] keeps only the last `cap` events
//!   (a flight recorder); evicted events are counted in
//!   [`Tracer::dropped`].
//! * **No wall clock.** Events carry [`SimTime`] only. The single
//!   sanctioned wall-clock boundary is [`WallTimer`] below, which exists
//!   for `BENCH_*.json` perf artifacts and is structurally excluded from
//!   the trace stream (there is no API to put a wall-clock reading into a
//!   `TraceEvent`); the determinism lint rejects `lint:allow(wallclock)`
//!   escapes anywhere outside this file.

pub mod registry;

use crate::time::SimTime;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// Causal provenance carried by a trace event (and propagated with
/// scheduled messages through the engine's event queue).
///
/// * `span` — the id of the span the event belongs to, allocated by
///   [`Tracer::alloc_span`]. Span ids come from a deterministic monotone
///   counter (never the sim RNG), so they are byte-identical per seed and
///   allocating one never perturbs the random stream.
/// * `cause` — the `seq` of an earlier trace event that caused this one
///   (e.g. recovery events point at the `fault.epoch` that triggered
///   them; a re-sourced `download` points at its `download.retry`).
///
/// Events serialize these as the optional JSONL keys `"s"` and `"cs"`,
/// placed between `"t"` and `"l"` and omitted when absent, so span-free
/// traces keep their exact pre-provenance byte layout.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Provenance {
    /// Span id the event belongs to, if any.
    pub span: Option<u64>,
    /// `seq` of the causing event, if any.
    pub cause: Option<u64>,
}

impl Provenance {
    /// The empty provenance: no span, no cause.
    pub const ROOT: Provenance = Provenance {
        span: None,
        cause: None,
    };
}

/// Verbosity of a trace event, ordered from most to least important.
///
/// `Off < Info < Debug < Trace`: configuring a component at `Debug` admits
/// `Info` and `Debug` events and rejects `Trace` ones.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug, Default)]
pub enum TraceLevel {
    /// Nothing is recorded.
    #[default]
    Off,
    /// Run-level milestones (role census, run end, swarm completion).
    Info,
    /// Per-decision events (floods, lookups, transfers, piece completions).
    Debug,
    /// Per-event firehose (engine dispatch, per-candidate choices).
    Trace,
}

impl TraceLevel {
    /// Stable lower-case name used in the JSONL encoding.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Info => "info",
            TraceLevel::Debug => "debug",
            TraceLevel::Trace => "trace",
        }
    }

    /// Parses the JSONL encoding back; `None` for unknown names.
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" => Some(TraceLevel::Off),
            "info" => Some(TraceLevel::Info),
            "debug" => Some(TraceLevel::Debug),
            "trace" => Some(TraceLevel::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for TraceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A typed field value. The variants cover everything the instrumentation
/// sites record; floats serialize via Rust's shortest-roundtrip formatter,
/// which is deterministic for identical bits.
#[derive(Clone, PartialEq, Debug)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (must be finite to serialize as a JSON number; non-finite
    /// values serialize as the strings `"NaN"` / `"inf"` / `"-inf"`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// Appends the value's JSON encoding to `out` (non-finite floats
    /// become the strings `"NaN"` / `"inf"` / `"-inf"`). Public so trace
    /// tooling can render parsed fields exactly as they were serialized.
    // lint:allow(alloc) — number-to-string formatting inside the serializer; bounded per value, no retained allocation
    pub fn write_json_value(&self, out: &mut String) {
        match self {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => {
                if v.is_finite() {
                    out.push_str(&format!("{v:?}"));
                } else if v.is_nan() {
                    out.push_str("\"NaN\"");
                } else if *v > 0.0 {
                    out.push_str("\"inf\"");
                } else {
                    out.push_str("\"-inf\"");
                }
            }
            Value::Str(s) => {
                out.push('"');
                escape_into(s, out);
                out.push('"');
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// Escapes `s` as JSON string content into `out`.
// lint:allow(alloc) — the `\uXXXX` control-char arm formats through a temporary; control chars never appear in trace names
pub(crate) fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Ordered key/value fields of an event under construction. Keys keep
/// their insertion order in the serialized output, so instrumentation
/// sites fully control the byte layout of their events.
#[derive(Clone, Default, Debug)]
pub struct Fields(Vec<(&'static str, Value)>);

impl Fields {
    /// Appends an unsigned integer field.
    pub fn u64(&mut self, key: &'static str, v: u64) -> &mut Self {
        self.0.push((key, Value::U64(v)));
        self
    }

    /// Appends a signed integer field.
    pub fn i64(&mut self, key: &'static str, v: i64) -> &mut Self {
        self.0.push((key, Value::I64(v)));
        self
    }

    /// Appends a float field.
    pub fn f64(&mut self, key: &'static str, v: f64) -> &mut Self {
        self.0.push((key, Value::F64(v)));
        self
    }

    /// Appends a string field.
    pub fn str(&mut self, key: &'static str, v: impl Into<String>) -> &mut Self {
        self.0.push((key, Value::Str(v.into())));
        self
    }

    /// Appends a boolean field.
    pub fn bool(&mut self, key: &'static str, v: bool) -> &mut Self {
        self.0.push((key, Value::Bool(v)));
        self
    }
}

/// One structured trace event.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceEvent {
    /// Global emission sequence number (0-based, gap-free unless the ring
    /// evicted; eviction never renumbers).
    pub seq: u64,
    /// Simulated time of the event.
    pub t: SimTime,
    /// Span id the event belongs to (JSONL key `"s"`), if any.
    pub span: Option<u64>,
    /// `seq` of the event that caused this one (JSONL key `"cs"`), if any.
    pub cause: Option<u64>,
    /// Verbosity the event was emitted at.
    pub level: TraceLevel,
    /// Emitting component (`"engine"`, `"net"`, `"gnutella"`, …).
    pub component: String,
    /// Event kind within the component (`"dispatch"`, `"flood.query"`, …).
    pub kind: String,
    /// Ordered key/value payload.
    pub fields: Vec<(String, Value)>,
}

impl TraceEvent {
    /// Serializes the event as one JSONL line (no trailing newline).
    // lint:allow(alloc) — constructs the returned line; the streaming hot path uses `write_json_into` with a reused buffer
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + 16 * self.fields.len());
        self.write_json_into(&mut out);
        out
    }

    /// Appends the event's JSONL encoding (no trailing newline) to `out`.
    /// The streaming sink serializes through this with a reused buffer so
    /// a per-event write allocates nothing beyond number formatting.
    // lint:allow(alloc) — integer-to-string formatting inside the serializer; bounded per event, no retained allocation
    pub fn write_json_into(&self, out: &mut String) {
        out.push_str("{\"seq\":");
        out.push_str(&self.seq.to_string());
        out.push_str(",\"t\":");
        out.push_str(&self.t.as_micros().to_string());
        if let Some(s) = self.span {
            out.push_str(",\"s\":");
            out.push_str(&s.to_string());
        }
        if let Some(cs) = self.cause {
            out.push_str(",\"cs\":");
            out.push_str(&cs.to_string());
        }
        out.push_str(",\"l\":\"");
        out.push_str(self.level.name());
        out.push_str("\",\"c\":\"");
        escape_into(&self.component, out);
        out.push_str("\",\"k\":\"");
        escape_into(&self.kind, out);
        out.push_str("\",\"f\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(k, out);
            out.push_str("\":");
            v.write_json_value(out);
        }
        out.push_str("}}");
    }
}

/// Where enabled tracers store events.
#[derive(Debug)]
enum Sink {
    /// Record nothing; every `is_enabled` query is `false`.
    Disabled,
    /// Unbounded in-memory buffer (quick experiment runs, tests).
    Buffer(Vec<TraceEvent>),
    /// Flight recorder: keep only the newest `cap` events.
    Ring {
        /// Capacity (≥ 1).
        cap: usize,
        /// Oldest-first buffer.
        buf: VecDeque<TraceEvent>,
    },
    /// Write-through JSONL stream: every admitted event is serialized and
    /// written immediately, nothing is retained in memory (O(1) memory
    /// for arbitrarily long runs).
    Stream(BufWriter<std::fs::File>),
}

/// The structured trace collector. See the module docs for the contract.
#[derive(Debug)]
pub struct Tracer {
    sink: Sink,
    default_level: TraceLevel,
    components: BTreeMap<String, TraceLevel>,
    seq: u64,
    dropped: u64,
    next_span: u64,
    prov: Provenance,
    /// Reused serialization buffer for the streaming sink's per-event
    /// write (kept across events so the hot path does not allocate).
    scratch_line: String,
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    fn with_sink(sink: Sink, default_level: TraceLevel) -> Tracer {
        Tracer {
            sink,
            default_level,
            components: BTreeMap::new(),
            seq: 0,
            dropped: 0,
            next_span: 0,
            prov: Provenance::ROOT,
            scratch_line: String::new(),
        }
    }

    /// The no-op tracer: records nothing, costs one branch per query.
    pub fn disabled() -> Tracer {
        Tracer::with_sink(Sink::Disabled, TraceLevel::Off)
    }

    /// An unbounded in-memory tracer admitting events up to
    /// `default_level` for every component.
    pub fn buffered(default_level: TraceLevel) -> Tracer {
        Tracer::with_sink(Sink::Buffer(Vec::new()), default_level)
    }

    /// A bounded flight recorder keeping the newest `cap` events (oldest
    /// evicted first; `cap` is clamped to ≥ 1).
    pub fn ring(default_level: TraceLevel, cap: usize) -> Tracer {
        Tracer::with_sink(
            Sink::Ring {
                cap: cap.max(1),
                buf: VecDeque::new(),
            },
            default_level,
        )
    }

    /// A write-through streaming tracer: every admitted event is
    /// serialized and appended to the JSONL file at `path` as it is
    /// emitted, retaining nothing in memory. Because serialization is the
    /// same [`TraceEvent::to_json`] the buffered sink drains through, a
    /// streamed trace is **byte-identical** to the buffered trace of the
    /// same seed. Call [`Tracer::flush`] (or drop the tracer) to flush
    /// the final buffer block.
    pub fn streaming(path: &Path, default_level: TraceLevel) -> io::Result<Tracer> {
        let file = std::fs::File::create(path)?;
        Ok(Tracer::with_sink(
            Sink::Stream(BufWriter::new(file)),
            default_level,
        ))
    }

    /// Overrides the admitted level for one component.
    pub fn set_component_level(&mut self, component: &str, level: TraceLevel) {
        self.components.insert(component.to_owned(), level);
    }

    /// Allocates a fresh span id from the deterministic monotone counter.
    ///
    /// Ids are allocated independently of level filtering and sink state,
    /// so call sites may allocate unconditionally: the id sequence is a
    /// pure function of the (deterministic) call order, never of the
    /// tracer configuration or the sim RNG stream.
    pub fn alloc_span(&mut self) -> u64 {
        let id = self.next_span;
        self.next_span += 1;
        id
    }

    /// The ambient provenance stamped onto every emitted event.
    pub fn provenance(&self) -> Provenance {
        self.prov
    }

    /// Replaces the ambient provenance (span and cause together).
    pub fn set_provenance(&mut self, prov: Provenance) {
        self.prov = prov;
    }

    /// Sets only the ambient span, keeping the current cause.
    pub fn set_span(&mut self, span: Option<u64>) {
        self.prov.span = span;
    }

    /// Sets only the ambient cause, keeping the current span.
    pub fn set_cause(&mut self, cause: Option<u64>) {
        self.prov.cause = cause;
    }

    /// Clears the ambient provenance back to [`Provenance::ROOT`].
    pub fn clear_provenance(&mut self) {
        self.prov = Provenance::ROOT;
    }

    /// Whether the tracer is recording at all.
    pub fn is_active(&self) -> bool {
        !matches!(self.sink, Sink::Disabled)
    }

    /// Whether an event from `component` at `level` would be recorded.
    /// This is the hot-path gate: on a disabled tracer it is a single
    /// `matches!` branch.
    #[inline]
    pub fn is_enabled(&self, component: &str, level: TraceLevel) -> bool {
        if matches!(self.sink, Sink::Disabled) || level == TraceLevel::Off {
            return false;
        }
        let admitted = self
            .components
            .get(component)
            .copied()
            .unwrap_or(self.default_level);
        level <= admitted
    }

    /// Emits one event. `build` is only invoked (and fields are only
    /// allocated) when the component/level combination is enabled.
    ///
    /// Returns the `seq` of the admitted event (`None` when filtered or
    /// disabled) so call sites can anchor later events to it via
    /// [`Tracer::set_cause`] — e.g. the `fault.epoch` seq becomes the
    /// cause of every recovery event the epoch triggers.
    #[inline]
    // lint:allow(alloc) — the retained TraceEvent record is the product; the disabled path returns first
    pub fn emit(
        &mut self,
        t: SimTime,
        component: &'static str,
        level: TraceLevel,
        kind: &'static str,
        build: impl FnOnce(&mut Fields),
    ) -> Option<u64> {
        if !self.is_enabled(component, level) {
            return None;
        }
        // Debug-build schema guard: events from registered components must
        // use a kind declared in the central registry (the static mirror
        // of this check is the `xtask analyze` registry pass). Scratch
        // components used by tests stay exempt. Sits after the enabled
        // gate so the disabled path keeps its one-branch cost.
        #[cfg(debug_assertions)]
        if registry::is_registered_component(component)
            && !registry::trace_kind_declared(component, kind)
        {
            // lint:allow(panic) — debug-only schema guard
            panic!(
                "trace kind {component:?}/{kind:?} is not declared in \
                 uap_sim::trace::registry::TRACE_KINDS; add a TraceKindSpec entry and a \
                 docs/OBSERVABILITY.md row (see docs/STATIC_ANALYSIS.md)"
            );
        }
        let mut fields = Fields::default();
        build(&mut fields);
        let ev = TraceEvent {
            seq: self.seq,
            t,
            span: self.prov.span,
            cause: self.prov.cause,
            level,
            component: component.to_owned(),
            kind: kind.to_owned(),
            fields: fields
                .0
                .into_iter()
                .map(|(k, v)| (k.to_owned(), v))
                .collect(),
        };
        let seq = self.seq;
        self.seq += 1;
        match &mut self.sink {
            Sink::Disabled => {}
            Sink::Buffer(buf) => buf.push(ev),
            Sink::Ring { cap, buf } => {
                if buf.len() >= *cap {
                    buf.pop_front();
                    self.dropped += 1;
                }
                buf.push_back(ev);
            }
            Sink::Stream(out) => {
                // Serialize into the tracer's reused line buffer — the
                // write-through path allocates nothing beyond number
                // formatting, whatever the run length.
                self.scratch_line.clear();
                ev.write_json_into(&mut self.scratch_line);
                self.scratch_line.push('\n');
                if out.write_all(self.scratch_line.as_bytes()).is_err() {
                    // Stream write failures count as drops; the run keeps
                    // going and `flush` surfaces the sink state.
                    self.dropped += 1;
                }
            }
        }
        Some(seq)
    }

    /// Flushes a streaming sink's buffered block to disk; a no-op for
    /// every other sink.
    pub fn flush(&mut self) -> io::Result<()> {
        match &mut self.sink {
            Sink::Stream(out) => out.flush(),
            _ => Ok(()),
        }
    }

    /// Number of events currently retained (always 0 for the streaming
    /// sink, which retains nothing).
    pub fn len(&self) -> usize {
        match &self.sink {
            Sink::Disabled | Sink::Stream(_) => 0,
            Sink::Buffer(buf) => buf.len(),
            Sink::Ring { buf, .. } => buf.len(),
        }
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events ever emitted (including evicted ones).
    pub fn emitted(&self) -> u64 {
        self.seq
    }

    /// Events evicted by the ring (0 for buffered/disabled tracers).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first (empty for the streaming sink — its
    /// events are already on disk).
    pub fn events(&self) -> Vec<&TraceEvent> {
        match &self.sink {
            Sink::Disabled | Sink::Stream(_) => Vec::new(),
            Sink::Buffer(buf) => buf.iter().collect(),
            Sink::Ring { buf, .. } => buf.iter().collect(),
        }
    }

    /// Serializes all retained events as JSONL (one event per line,
    /// trailing newline after each).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.events() {
            out.push_str(&ev.to_json());
            out.push('\n');
        }
        out
    }

    /// Writes the retained events as JSONL.
    pub fn write_jsonl<W: Write>(&self, w: &mut W) -> io::Result<()> {
        w.write_all(self.to_jsonl().as_bytes())
    }
}

/// Parses one JSONL line produced by [`TraceEvent::to_json`] back into an
/// event. Returns `Err` with a position-annotated message on malformed
/// input. `xtask trace` builds its `summary`/`diff` views on this.
pub fn parse_jsonl_line(line: &str) -> Result<TraceEvent, String> {
    let mut p = Parser {
        s: line.as_bytes(),
        i: 0,
    };
    let top = p.value()?;
    p.skip_ws();
    if p.i != p.s.len() {
        return Err(format!("trailing bytes at {}", p.i));
    }
    let Json::Object(pairs) = top else {
        return Err("top level is not an object".into());
    };
    let mut ev = TraceEvent {
        seq: 0,
        t: SimTime::ZERO,
        span: None,
        cause: None,
        level: TraceLevel::Off,
        component: String::new(),
        kind: String::new(),
        fields: Vec::new(),
    };
    for (k, v) in pairs {
        match (k.as_str(), v) {
            ("seq", Json::Num(n)) => ev.seq = n as u64,
            ("t", Json::Num(n)) => ev.t = SimTime::from_micros(n as u64),
            ("s", Json::Num(n)) => ev.span = Some(n as u64),
            ("cs", Json::Num(n)) => ev.cause = Some(n as u64),
            ("l", Json::Str(s)) => {
                ev.level = TraceLevel::parse(&s).ok_or_else(|| format!("unknown level {s:?}"))?
            }
            ("c", Json::Str(s)) => ev.component = s,
            ("k", Json::Str(s)) => ev.kind = s,
            ("f", Json::Object(fs)) => {
                ev.fields = fs
                    .into_iter()
                    .map(|(k, v)| {
                        let val = match v {
                            Json::Num(n) => {
                                if n.fract() == 0.0 && n >= 0.0 && n <= u64::MAX as f64 {
                                    Value::U64(n as u64)
                                } else if n.fract() == 0.0 && n < 0.0 {
                                    Value::I64(n as i64)
                                } else {
                                    Value::F64(n)
                                }
                            }
                            Json::Str(s) => Value::Str(s),
                            Json::Bool(b) => Value::Bool(b),
                            Json::Object(_) => Value::Str("<object>".into()),
                        };
                        (k, val)
                    })
                    .collect();
            }
            (other, _) => return Err(format!("unexpected key {other:?}")),
        }
    }
    Ok(ev)
}

/// Minimal JSON value for the trace-line subset.
enum Json {
    Num(f64),
    Str(String),
    Bool(bool),
    Object(Vec<(String, Json)>),
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.i < self.s.len() && (self.s[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.s.get(self.i) {
            Some(b'{') => self.object(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(c) if c.is_ascii_digit() || *c == b'-' => self.number(),
            other => Err(format!("unexpected {:?} at {}", other, self.i)),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.s[self.i..].starts_with(lit.as_bytes()) {
            self.i += lit.len();
            Ok(v)
        } else {
            Err(format!("expected {lit} at {}", self.i))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.i += 1; // consume '{'
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.s.get(self.i) == Some(&b'}') {
            self.i += 1;
            return Ok(Json::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            if self.s.get(self.i) != Some(&b':') {
                return Err(format!("expected ':' at {}", self.i));
            }
            self.i += 1;
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.s.get(self.i) {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Object(pairs));
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.s.get(self.i) != Some(&b'"') {
            return Err(format!("expected string at {}", self.i));
        }
        self.i += 1;
        let mut out = String::new();
        while let Some(&c) = self.s.get(self.i) {
            match c {
                b'"' => {
                    self.i += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.i += 1;
                    match self.s.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.i += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.i += 1;
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole char.
                    let rest = std::str::from_utf8(&self.s[self.i..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("truncated input")?;
                    out.push(ch);
                    self.i += ch.len_utf8();
                }
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.i;
        while let Some(&c) = self.s.get(self.i) {
            if c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.i += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.s[start..self.i])
            .map_err(|e| e.to_string())?
            .parse::<f64>()
            .map(Json::Num)
            .map_err(|e| e.to_string())
    }
}

/// The **only** sanctioned wall-clock boundary in simulation-path code.
///
/// Used by the bench binaries to stamp `BENCH_*.json` perf artifacts and
/// by opt-in engine stage timing. Readings from this timer must never be
/// fed into a [`Tracer`] or into the determinism-compared sections of a
/// run report — traces and reports stay byte-identical across runs, and
/// `xtask trace diff` skips `"wall…"` keys precisely so this boundary
/// stays visible but inert. The determinism lint
/// (`cargo run -p xtask -- lint`) rejects `lint:allow(wallclock)`
/// anywhere outside this file, so every wall-clock read in the workspace
/// flows through here.
#[derive(Debug)]
pub struct WallTimer {
    start: std::time::Instant, // lint:allow(wallclock) — the documented boundary
}

impl WallTimer {
    /// Starts the timer.
    #[allow(clippy::new_without_default)]
    pub fn start() -> WallTimer {
        WallTimer {
            start: std::time::Instant::now(), // lint:allow(wallclock) — the documented boundary
        }
    }

    /// Seconds elapsed since [`WallTimer::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(
        t: u64,
        c: &'static str,
        l: TraceLevel,
        k: &'static str,
    ) -> (SimTime, &'static str, TraceLevel, &'static str) {
        (SimTime::from_micros(t), c, l, k)
    }

    #[test]
    fn disabled_tracer_records_nothing_and_skips_builders() {
        let mut t = Tracer::disabled();
        let mut built = false;
        t.emit(SimTime::ZERO, "x", TraceLevel::Info, "k", |_| built = true);
        assert!(!built, "field builder ran on the disabled path");
        assert_eq!(t.len(), 0);
        assert_eq!(t.emitted(), 0);
        assert!(!t.is_enabled("x", TraceLevel::Info));
    }

    #[test]
    fn level_filtering_is_per_component() {
        let mut t = Tracer::buffered(TraceLevel::Info);
        t.set_component_level("chatty", TraceLevel::Trace);
        t.set_component_level("muted", TraceLevel::Off);
        assert!(t.is_enabled("other", TraceLevel::Info));
        assert!(!t.is_enabled("other", TraceLevel::Debug));
        assert!(t.is_enabled("chatty", TraceLevel::Trace));
        assert!(!t.is_enabled("muted", TraceLevel::Info));

        for (time, c, l, k) in [
            ev(1, "other", TraceLevel::Info, "a"),
            ev(2, "other", TraceLevel::Debug, "b"), // filtered
            ev(3, "chatty", TraceLevel::Trace, "c"),
            ev(4, "muted", TraceLevel::Info, "d"), // filtered
        ] {
            t.emit(time, c, l, k, |_| {});
        }
        let kinds: Vec<&str> = t.events().iter().map(|e| e.kind.as_str()).collect();
        assert_eq!(kinds, vec!["a", "c"]);
        // seq numbers only count admitted events (gap-free stream).
        assert_eq!(t.events()[1].seq, 1);
    }

    #[test]
    fn ring_evicts_oldest_first() {
        let mut t = Tracer::ring(TraceLevel::Info, 3);
        for i in 0..5u64 {
            t.emit(SimTime::from_micros(i), "c", TraceLevel::Info, "k", |f| {
                f.u64("i", i);
            });
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.emitted(), 5);
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events must be evicted first");
    }

    #[test]
    fn jsonl_round_trip_preserves_everything() {
        let mut t = Tracer::buffered(TraceLevel::Trace);
        t.emit(
            SimTime::from_millis(5),
            "gnutella",
            TraceLevel::Debug,
            "flood.query",
            |f| {
                f.u64("host", 17)
                    .i64("delta", -3)
                    .f64("ratio", 0.25)
                    .str("cat", "intra \"quoted\"\n")
                    .bool("ok", true);
            },
        );
        let line = t.to_jsonl();
        let line = line.trim_end();
        let back = parse_jsonl_line(line).expect("round trip parse");
        let orig = t.events()[0];
        assert_eq!(back.seq, orig.seq);
        assert_eq!(back.t, orig.t);
        assert_eq!(back.level, orig.level);
        assert_eq!(back.component, orig.component);
        assert_eq!(back.kind, orig.kind);
        assert_eq!(back.fields, orig.fields);
        // And re-serialization is byte-identical.
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn field_order_is_preserved_in_output() {
        let mut t = Tracer::buffered(TraceLevel::Info);
        t.emit(SimTime::ZERO, "c", TraceLevel::Info, "k", |f| {
            f.u64("zulu", 1).u64("alpha", 2);
        });
        let line = t.to_jsonl();
        let zulu = line.find("zulu").expect("zulu present");
        let alpha = line.find("alpha").expect("alpha present");
        assert!(zulu < alpha, "insertion order must win over lexical order");
    }

    #[test]
    fn same_emission_sequence_serializes_identically() {
        let run = || {
            let mut t = Tracer::buffered(TraceLevel::Debug);
            for i in 0..20u64 {
                t.emit(
                    SimTime::from_micros(i * 7),
                    "net",
                    TraceLevel::Debug,
                    "transfer",
                    |f| {
                        f.u64("from", i)
                            .u64("to", i + 1)
                            .f64("frac", i as f64 / 3.0);
                    },
                );
            }
            t.to_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn non_finite_floats_serialize_as_strings() {
        let mut t = Tracer::buffered(TraceLevel::Info);
        t.emit(SimTime::ZERO, "c", TraceLevel::Info, "k", |f| {
            f.f64("nan", f64::NAN).f64("inf", f64::INFINITY);
        });
        let line = t.to_jsonl();
        assert!(line.contains("\"nan\":\"NaN\""));
        assert!(line.contains("\"inf\":\"inf\""));
        // Still parses.
        parse_jsonl_line(line.trim_end()).expect("parseable");
    }

    #[test]
    fn emit_returns_the_admitted_seq_and_none_when_filtered() {
        let mut t = Tracer::buffered(TraceLevel::Info);
        assert_eq!(
            t.emit(SimTime::ZERO, "c", TraceLevel::Info, "a", |_| {}),
            Some(0)
        );
        assert_eq!(
            t.emit(SimTime::ZERO, "c", TraceLevel::Debug, "b", |_| {}),
            None
        );
        assert_eq!(
            t.emit(SimTime::ZERO, "c", TraceLevel::Info, "c", |_| {}),
            Some(1)
        );
        let mut d = Tracer::disabled();
        assert_eq!(
            d.emit(SimTime::ZERO, "c", TraceLevel::Info, "a", |_| {}),
            None
        );
    }

    #[test]
    fn span_ids_are_a_deterministic_monotone_counter() {
        let mut t = Tracer::buffered(TraceLevel::Info);
        assert_eq!(t.alloc_span(), 0);
        assert_eq!(t.alloc_span(), 1);
        // Allocation is independent of sink state and level filtering.
        let mut d = Tracer::disabled();
        assert_eq!(d.alloc_span(), 0);
        assert_eq!(d.alloc_span(), 1);
    }

    #[test]
    fn span_and_cause_round_trip_through_jsonl() {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        t.set_provenance(Provenance {
            span: Some(3),
            cause: Some(17),
        });
        t.emit(SimTime::from_micros(9), "c", TraceLevel::Debug, "k", |f| {
            f.u64("x", 1);
        });
        t.clear_provenance();
        t.emit(
            SimTime::from_micros(10),
            "c",
            TraceLevel::Debug,
            "k2",
            |_| {},
        );
        let lines = t.to_jsonl();
        let mut it = lines.lines();
        let first = it.next().expect("first line");
        assert!(
            first.contains("\"t\":9,\"s\":3,\"cs\":17,\"l\":"),
            "span/cause keys sit between t and l: {first}"
        );
        let back = parse_jsonl_line(first).expect("parse");
        assert_eq!(back.span, Some(3));
        assert_eq!(back.cause, Some(17));
        assert_eq!(back.to_json(), first, "re-serialization is byte-identical");
        // Provenance-free events omit the keys entirely.
        let second = it.next().expect("second line");
        assert!(!second.contains("\"s\":") && !second.contains("\"cs\":"));
        let back2 = parse_jsonl_line(second).expect("parse");
        assert_eq!((back2.span, back2.cause), (None, None));
    }

    #[test]
    fn non_finite_floats_inside_span_events_still_round_trip() {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        t.set_span(Some(5));
        t.emit(SimTime::ZERO, "c", TraceLevel::Debug, "span.open", |f| {
            f.str("span_kind", "x")
                .f64("nan", f64::NAN)
                .f64("ninf", f64::NEG_INFINITY);
        });
        let line = t.to_jsonl();
        let line = line.trim_end();
        assert!(line.contains("\"s\":5"));
        assert!(line.contains("\"nan\":\"NaN\""));
        assert!(line.contains("\"ninf\":\"-inf\""));
        let back = parse_jsonl_line(line).expect("parse");
        assert_eq!(back.span, Some(5));
        assert_eq!(back.to_json(), line);
    }

    #[test]
    fn ring_eviction_of_open_spans_keeps_drop_accounting() {
        // A span.open can be evicted while later span members survive;
        // the ring's dropped() count is how downstream tooling detects
        // the truncation instead of reporting orphan spans.
        let mut t = Tracer::ring(TraceLevel::Debug, 2);
        t.set_span(Some(0));
        t.emit(
            SimTime::from_micros(0),
            "c",
            TraceLevel::Debug,
            "span.open",
            |f| {
                f.str("span_kind", "x");
            },
        );
        t.emit(
            SimTime::from_micros(1),
            "c",
            TraceLevel::Debug,
            "member",
            |_| {},
        );
        t.emit(
            SimTime::from_micros(2),
            "c",
            TraceLevel::Debug,
            "span.close",
            |f| {
                f.str("span_kind", "x");
            },
        );
        assert_eq!(t.dropped(), 1, "the span.open was evicted");
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert!(
            evs.iter().all(|e| e.span == Some(0)),
            "members keep their span id"
        );
        assert_eq!(evs[0].kind, "member");
        assert_eq!(evs[1].kind, "span.close");
    }

    #[test]
    fn streaming_sink_bytes_match_the_buffered_sink() {
        let dir = std::env::temp_dir();
        let path = dir.join("uap_trace_streaming_byte_identity.jsonl");
        let emit_all = |t: &mut Tracer| {
            let span = t.alloc_span();
            t.set_span(Some(span));
            let open = t.emit(SimTime::ZERO, "c", TraceLevel::Debug, "span.open", |f| {
                f.str("span_kind", "x");
            });
            t.set_cause(open);
            for i in 0..10u64 {
                t.emit(SimTime::from_micros(i), "c", TraceLevel::Debug, "k", |f| {
                    f.u64("i", i).f64("frac", i as f64 / 3.0);
                });
            }
            t.emit(
                SimTime::from_micros(10),
                "c",
                TraceLevel::Debug,
                "span.close",
                |f| {
                    f.str("span_kind", "x");
                },
            );
            t.clear_provenance();
        };
        let mut buffered = Tracer::buffered(TraceLevel::Debug);
        emit_all(&mut buffered);
        let mut streaming = Tracer::streaming(&path, TraceLevel::Debug).expect("create");
        emit_all(&mut streaming);
        streaming.flush().expect("flush");
        assert_eq!(streaming.len(), 0, "streaming sink retains nothing");
        assert_eq!(streaming.emitted(), buffered.emitted());
        let streamed = std::fs::read_to_string(&path).expect("read back");
        assert_eq!(streamed, buffered.to_jsonl(), "byte-identical output");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn wall_timer_is_monotonic_and_outside_the_trace() {
        let w = WallTimer::start();
        let e1 = w.elapsed_secs();
        let e2 = w.elapsed_secs();
        assert!(e2 >= e1);
        assert!(e1 >= 0.0);
    }
}
