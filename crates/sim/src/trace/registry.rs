//! The central registry of every trace event kind and metrics key.
//!
//! Every `(component, kind)` pair a [`crate::trace::Tracer`] may emit and
//! every [`crate::metrics::Metrics`] key the simulation writes is declared
//! here, exactly once, next to one line of documentation. Three consumers
//! keep the declaration honest:
//!
//! 1. **The static drift checker** (`cargo run -p xtask -- analyze`,
//!    registry pass) verifies that every kind/key *emitted* anywhere in
//!    the workspace is declared here, that every declared entry is still
//!    emitted somewhere, and that the registry tables in
//!    `docs/OBSERVABILITY.md` match this file row for row — so the code,
//!    this registry, and the documentation cannot drift apart silently.
//! 2. **Debug-build runtime checks**: [`crate::trace::Tracer::emit`]
//!    asserts (under `debug_assertions`) that any event from a registered
//!    component uses a declared kind, and the [`crate::metrics::Metrics`]
//!    write paths assert that any key under a registered namespace prefix
//!    is declared.
//! 3. **Humans**: the table in `docs/OBSERVABILITY.md` is generated from
//!    the same entries, so the schema readers see is the schema the
//!    analyzer proves.
//!
//! Adding instrumentation therefore takes three edits — the emission
//! site, an entry here, and a row in `docs/OBSERVABILITY.md` — and the
//! analyzer fails CI until all three agree.
//!
//! Keys containing a dynamic segment are declared with a trailing `*`
//! pattern (e.g. `engine.events.*` for the per-event-kind counters the
//! profiler mints from [`crate::engine::World::kind_of`] names).

/// One declared trace event kind.
#[derive(Clone, Copy, Debug)]
pub struct TraceKindSpec {
    /// Emitting component (`"engine"`, `"net"`, `"gnutella"`, …).
    pub component: &'static str,
    /// Event kind within the component (`"dispatch"`, `"flood.query"`, …).
    pub kind: &'static str,
    /// The [`crate::trace::TraceLevel`] the kind is emitted at
    /// (lower-case name: `"info"`, `"debug"`, `"trace"`).
    pub level: &'static str,
    /// One-line description (mirrored in `docs/OBSERVABILITY.md`).
    pub doc: &'static str,
}

/// What a metrics key stores.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotone event count ([`crate::metrics::Metrics::incr`] /
    /// [`crate::metrics::Metrics::set_counter`]).
    Counter,
    /// Scalar sample distribution ([`crate::metrics::Metrics::record`]).
    Histogram,
    /// `(sim-time, value)` series ([`crate::metrics::Metrics::trace`]).
    Series,
}

impl MetricKind {
    /// Stable lower-case name used in the docs table.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Histogram => "histogram",
            MetricKind::Series => "series",
        }
    }
}

/// One declared metrics key (or trailing-`*` key pattern).
#[derive(Clone, Copy, Debug)]
pub struct MetricSpec {
    /// Full key (`"net.route_cache.hit"`) or prefix pattern
    /// (`"engine.events.*"`).
    pub key: &'static str,
    /// Storage shape of the key.
    pub kind: MetricKind,
    /// One-line description (mirrored in `docs/OBSERVABILITY.md`).
    pub doc: &'static str,
}

/// Every component that emits trace events or namespaces metrics keys.
///
/// The debug-build checks only fire for these names, so tests and
/// examples remain free to use scratch components (`"echo"`, …) without
/// registering them.
pub const COMPONENTS: &[&str] = &[
    "engine",
    "net",
    "gnutella",
    "kademlia",
    "bittorrent",
    "info",
    "experiment",
];

/// Every trace event kind the workspace emits.
pub const TRACE_KINDS: &[TraceKindSpec] = &[
    TraceKindSpec {
        component: "engine",
        kind: "dispatch",
        level: "trace",
        doc: "one event popped from the queue (kind, queue depth)",
    },
    TraceKindSpec {
        component: "net",
        kind: "route_cache",
        level: "debug",
        doc: "AS-pair route cache probe outcome (hit/miss, packed entry)",
    },
    TraceKindSpec {
        component: "net",
        kind: "transfer",
        level: "debug",
        doc: "one accounted transfer (src, dst, bytes, category)",
    },
    TraceKindSpec {
        component: "net",
        kind: "link.total",
        level: "debug",
        doc: "end-of-run per-link traffic total (link, bytes)",
    },
    TraceKindSpec {
        component: "net",
        kind: "flow.open",
        level: "debug",
        doc: "flow joined the max-min allocation set (flow id, src, dst)",
    },
    TraceKindSpec {
        component: "net",
        kind: "flow.close",
        level: "debug",
        doc: "flow left the max-min allocation set (flow id, bytes moved)",
    },
    TraceKindSpec {
        component: "net",
        kind: "fault.epoch",
        level: "info",
        doc: "fault epoch boundary applied (links down, latency factor, crashed hosts)",
    },
    TraceKindSpec {
        component: "net",
        kind: "routing.repair",
        level: "info",
        doc: "incremental routing repair at a fault epoch (changed links, dirty sources, full-rebuild fallback)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "roles",
        level: "info",
        doc: "role census after ultrapeer promotion (hosts, ultrapeers, leaves)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "run.end",
        level: "info",
        doc: "end-of-run summary (events, queries, downloads, msgs)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "join",
        level: "debug",
        doc: "host joined the overlay (host, degree)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "leave",
        level: "debug",
        doc: "host left the overlay (host)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "connect",
        level: "trace",
        doc: "one neighbor edge chosen during join (from, to)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "flood.ping",
        level: "debug",
        doc: "ping flood completed (origin, messages, pongs)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "flood.query",
        level: "debug",
        doc: "query flood completed (origin, messages, hits)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "download",
        level: "debug",
        doc: "download source selected (peer, source, intra-AS flag)",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "download.retry",
        level: "debug",
        doc: "download re-sourced to an alternate provider after a transfer failure",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "span.open",
        level: "debug",
        doc: "causal span opened: a query span covering flood, source selection and download",
    },
    TraceKindSpec {
        component: "gnutella",
        kind: "span.close",
        level: "debug",
        doc: "causal span closed (span_kind, hit flag, modeled duration)",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "lookup.start",
        level: "debug",
        doc: "iterative lookup started (origin, target)",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "lookup.hop",
        level: "debug",
        doc: "one lookup RPC hop (to, distance, rtt)",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "lookup.done",
        level: "debug",
        doc: "lookup finished (hops, rpcs, found)",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "rpc.retry",
        level: "debug",
        doc: "RPC retransmitted after a timeout with exponential backoff (attempt, wait)",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "span.open",
        level: "debug",
        doc: "causal span opened: a lookup span covering every hop, retransmit and backoff",
    },
    TraceKindSpec {
        component: "kademlia",
        kind: "span.close",
        level: "debug",
        doc: "causal span closed (span_kind, found flag, modeled duration)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "swarm.done",
        level: "info",
        doc: "swarm completed (rounds, done peers)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "round",
        level: "debug",
        doc: "choke-round summary (round, done, exchanged pieces)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "peer.done",
        level: "debug",
        doc: "one leecher finished all pieces (peer, round)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "unchoke",
        level: "trace",
        doc: "unchoke set chosen for one peer (peer, unchoked)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "piece",
        level: "trace",
        doc: "one piece transferred (from, to, piece, intra-AS flag)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "reannounce",
        level: "debug",
        doc: "tracker re-announce after dead-neighbor loss (peer, received)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "chunk.poisoned",
        level: "debug",
        doc: "received chunks failed hash verification; sender banned, pieces re-requested (peer, sender, chunks)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "chunk.reassign",
        level: "debug",
        doc: "partial-chunk credit from a crashed sender timed out at a fault epoch (peer, sender, lost bytes)",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "span.open",
        level: "debug",
        doc: "causal span opened: a per-leecher span covering announce, piece exchange and completion",
    },
    TraceKindSpec {
        component: "bittorrent",
        kind: "span.close",
        level: "debug",
        doc: "causal span closed (span_kind, done flag)",
    },
    TraceKindSpec {
        component: "info",
        kind: "ics.build",
        level: "debug",
        doc: "ICS coordinate build (landmarks, hosts, error)",
    },
    TraceKindSpec {
        component: "info",
        kind: "ping.probe",
        level: "debug",
        doc: "active ping measurement issued (from, to, rtt)",
    },
    TraceKindSpec {
        component: "info",
        kind: "oracle.rank",
        level: "debug",
        doc: "ISP oracle ranking call (host, candidates)",
    },
    TraceKindSpec {
        component: "experiment",
        kind: "phase",
        level: "info",
        doc: "experiment phase marker separating per-configuration trace segments",
    },
];

/// Every metrics key (or trailing-`*` pattern) the workspace writes.
pub const METRICS: &[MetricSpec] = &[
    MetricSpec {
        key: "engine.events.*",
        kind: MetricKind::Counter,
        doc: "events handled per World::kind_of name (profiler)",
    },
    MetricSpec {
        key: "engine.queue_depth",
        kind: MetricKind::Series,
        doc: "event-queue depth sampled every queue_depth_every events",
    },
    MetricSpec {
        key: "engine.events_per_sec",
        kind: MetricKind::Series,
        doc: "events processed per simulated second",
    },
    MetricSpec {
        key: "net.route_cache.hit",
        kind: MetricKind::Counter,
        doc: "AS-pair route cache hits (exported at end of run)",
    },
    MetricSpec {
        key: "net.route_cache.miss",
        kind: MetricKind::Counter,
        doc: "AS-pair route cache misses (exported at end of run)",
    },
    MetricSpec {
        key: "net.route_cache.invalidations",
        kind: MetricKind::Counter,
        doc: "route-cache rebuilds after routing swaps (exported at end of run)",
    },
    MetricSpec {
        key: "net.flow.opened",
        kind: MetricKind::Counter,
        doc: "flows accepted by the max-min allocator (exported at end of run)",
    },
    MetricSpec {
        key: "net.flow.rejected",
        kind: MetricKind::Counter,
        doc: "flows rejected as unroutable under the active fault state (exported at end of run)",
    },
    MetricSpec {
        key: "net.fault.epochs",
        kind: MetricKind::Counter,
        doc: "fault epoch boundaries applied to the underlay",
    },
    MetricSpec {
        key: "net.routing.sources_recomputed",
        kind: MetricKind::Counter,
        doc: "sources whose routing rows fault-epoch repairs recomputed (exported at end of run)",
    },
    MetricSpec {
        key: "net.routing.sources_total",
        kind: MetricKind::Counter,
        doc: "sources a full rebuild would have recomputed per epoch, summed (exported at end of run)",
    },
    MetricSpec {
        key: "net.routing.repair_full_fallbacks",
        kind: MetricKind::Counter,
        doc: "fault epochs where majority-dirty repair fell back to a full rebuild (exported at end of run)",
    },
    MetricSpec {
        key: "gnutella.joins",
        kind: MetricKind::Counter,
        doc: "hosts that joined the overlay",
    },
    MetricSpec {
        key: "gnutella.leaves",
        kind: MetricKind::Counter,
        doc: "hosts that left the overlay",
    },
    MetricSpec {
        key: "gnutella.msg.ping",
        kind: MetricKind::Counter,
        doc: "PING messages flooded",
    },
    MetricSpec {
        key: "gnutella.msg.pong",
        kind: MetricKind::Counter,
        doc: "PONG replies routed back",
    },
    MetricSpec {
        key: "gnutella.msg.query",
        kind: MetricKind::Counter,
        doc: "QUERY messages flooded",
    },
    MetricSpec {
        key: "gnutella.msg.queryhit",
        kind: MetricKind::Counter,
        doc: "QUERYHIT replies routed back",
    },
    MetricSpec {
        key: "gnutella.queries",
        kind: MetricKind::Counter,
        doc: "queries issued",
    },
    MetricSpec {
        key: "gnutella.queries.success",
        kind: MetricKind::Counter,
        doc: "queries that found at least one provider",
    },
    MetricSpec {
        key: "gnutella.downloads",
        kind: MetricKind::Counter,
        doc: "downloads performed",
    },
    MetricSpec {
        key: "gnutella.downloads.intra_as",
        kind: MetricKind::Counter,
        doc: "downloads served from the same AS as the requester",
    },
    MetricSpec {
        key: "gnutella.downloads.retried",
        kind: MetricKind::Counter,
        doc: "downloads re-sourced to an alternate provider after a failure",
    },
    MetricSpec {
        key: "gnutella.downloads.failed",
        kind: MetricKind::Counter,
        doc: "downloads abandoned after exhausting every known provider",
    },
];

/// True when `component` is a registered component name.
pub fn is_registered_component(component: &str) -> bool {
    COMPONENTS.contains(&component)
}

/// True when `(component, kind)` is a declared trace event kind.
pub fn trace_kind_declared(component: &str, kind: &str) -> bool {
    TRACE_KINDS
        .iter()
        .any(|s| s.component == component && s.kind == kind)
}

/// True when `key` matches a declared metrics key: an exact entry, or a
/// trailing-`*` pattern entry whose prefix it extends (the dynamic
/// segment must be non-empty).
pub fn metric_key_declared(key: &str) -> bool {
    METRICS.iter().any(|s| match s.key.strip_suffix('*') {
        Some(prefix) => key.len() > prefix.len() && key.starts_with(prefix),
        None => s.key == key,
    })
}

/// True when `key` sits under a registered component namespace
/// (`"<component>."` prefix) — the debug-build metrics checks only apply
/// to these, so tests remain free to use scratch keys.
pub fn in_registered_namespace(key: &str) -> bool {
    COMPONENTS
        .iter()
        .any(|c| key.len() > c.len() && key.as_bytes()[c.len()] == b'.' && key.starts_with(c))
}

/// Debug-build guard used by the metrics write paths: panics when a key
/// under a registered namespace is not declared in [`METRICS`].
#[cfg(debug_assertions)]
pub(crate) fn debug_check_metric_key(key: &str) {
    if in_registered_namespace(key) && !metric_key_declared(key) {
        // lint:allow(panic) — debug-only schema guard, mirrors the static registry pass
        panic!(
            "metrics key {key:?} is not declared in uap_sim::trace::registry::METRICS; \
             add a MetricSpec entry and a docs/OBSERVABILITY.md row (see docs/STATIC_ANALYSIS.md)"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declared_tables_have_no_duplicates() {
        for (i, a) in TRACE_KINDS.iter().enumerate() {
            for b in &TRACE_KINDS[i + 1..] {
                assert!(
                    !(a.component == b.component && a.kind == b.kind),
                    "duplicate trace kind {}/{}",
                    a.component,
                    a.kind
                );
            }
        }
        for (i, a) in METRICS.iter().enumerate() {
            for b in &METRICS[i + 1..] {
                assert_ne!(a.key, b.key, "duplicate metric key {}", a.key);
            }
        }
    }

    #[test]
    fn every_declared_component_is_registered() {
        for s in TRACE_KINDS {
            assert!(
                is_registered_component(s.component),
                "trace kind {}/{} uses unregistered component",
                s.component,
                s.kind
            );
        }
        for s in METRICS {
            assert!(
                in_registered_namespace(s.key),
                "metric key {} is outside every registered namespace",
                s.key
            );
        }
    }

    #[test]
    fn declared_levels_parse() {
        for s in TRACE_KINDS {
            assert!(
                crate::trace::TraceLevel::parse(s.level)
                    .is_some_and(|l| l != crate::trace::TraceLevel::Off),
                "trace kind {}/{} has bad level {:?}",
                s.component,
                s.kind,
                s.level
            );
        }
    }

    #[test]
    fn lookup_helpers() {
        assert!(trace_kind_declared("net", "transfer"));
        assert!(!trace_kind_declared("net", "no.such.kind"));
        assert!(
            !trace_kind_declared("echo", "ping"),
            "scratch components are undeclared"
        );
        assert!(metric_key_declared("net.route_cache.hit"));
        assert!(metric_key_declared("engine.events.ping"), "pattern key");
        assert!(
            !metric_key_declared("engine.events."),
            "empty dynamic segment"
        );
        assert!(!metric_key_declared("net.route_cache.evictions"));
        assert!(in_registered_namespace("gnutella.msg.ping"));
        assert!(!in_registered_namespace("gnutellaX.msg"));
        assert!(!in_registered_namespace("ping"));
    }

    #[test]
    fn span_kinds_are_declared_in_balanced_pairs() {
        // The causal-span convention: a component declaring `span.open`
        // must declare `span.close` at the same level (and vice versa),
        // so the integrity checker can require balanced opens/closes.
        for s in TRACE_KINDS {
            let counterpart = match s.kind {
                "span.open" => "span.close",
                "span.close" => "span.open",
                _ => continue,
            };
            let paired = TRACE_KINDS
                .iter()
                .find(|o| o.component == s.component && o.kind == counterpart);
            let p = paired.unwrap_or_else(|| {
                // lint:allow(panic) — test assertion
                panic!(
                    "{}/{} has no {} counterpart",
                    s.component, s.kind, counterpart
                )
            });
            assert_eq!(
                p.level, s.level,
                "{}: span.open/span.close levels must match",
                s.component
            );
        }
        assert!(trace_kind_declared("gnutella", "span.open"));
        assert!(trace_kind_declared("kademlia", "span.close"));
        assert!(trace_kind_declared("bittorrent", "span.open"));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "not declared")]
    fn undeclared_key_in_registered_namespace_panics_in_debug() {
        debug_check_metric_key("net.route_cache.evictions");
    }

    #[test]
    #[cfg(debug_assertions)]
    fn scratch_keys_are_exempt_from_the_debug_guard() {
        debug_check_metric_key("ping");
        debug_check_metric_key("msg.ping");
        debug_check_metric_key("engine.queue_depth");
    }
}
