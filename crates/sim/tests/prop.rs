//! Property-based tests for the simulation engine's core invariants.

use proptest::prelude::*;
use uap_sim::{EventQueue, Histogram, SimRng, SimTime, Zipf};

proptest! {
    /// The event queue delivers in (time, insertion) order for ANY input.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_micros(t), i);
        }
        let mut out = Vec::new();
        while let Some((t, i)) = q.pop() {
            out.push((t, i));
        }
        prop_assert_eq!(out.len(), times.len());
        for w in out.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time order violated");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "stability violated");
            }
        }
    }

    /// Quantiles are always actual samples and ordered in q.
    #[test]
    fn histogram_quantiles_are_samples_and_monotone(
        samples in prop::collection::vec(-1e6f64..1e6, 1..100),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let v_lo = h.quantile(lo).unwrap();
        let v_hi = h.quantile(hi).unwrap();
        prop_assert!(v_lo <= v_hi);
        prop_assert!(samples.contains(&v_lo));
        prop_assert!(samples.contains(&v_hi));
        prop_assert!(v_lo >= h.min().unwrap() && v_hi <= h.max().unwrap());
    }

    /// Zipf PMF sums to 1 and sampling stays in range for any (n, s).
    #[test]
    fn zipf_is_a_distribution(n in 1usize..500, s in 0.0f64..3.0, seed in any::<u64>()) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|r| z.pmf(r)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// sample_indices returns distinct, in-range indices of the right count.
    #[test]
    fn sample_indices_invariants(n in 0usize..300, k in 0usize..400, seed in any::<u64>()) {
        let mut rng = SimRng::new(seed);
        let s = rng.sample_indices(n, k);
        prop_assert_eq!(s.len(), k.min(n));
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), s.len());
        prop_assert!(s.iter().all(|&i| i < n));
    }
}
