//! Workspace call graph: name resolution, entry points, and shortest
//! witness chains.
//!
//! Resolution is approximate by design — it over-approximates the
//! possible callees of each call site so that reachability proofs stay
//! sound (a sink the analyzer misses would be a false negative; an
//! extra edge only costs a spurious-but-explainable witness chain):
//!
//! - `.m(...)` method calls resolve to *every* impl method named `m`
//!   in the workspace.
//! - `Qual::f(...)` resolves to methods of the impl type `Qual`
//!   (with `Self` mapped to the caller's own impl type); when `Qual`
//!   names no known type, to free functions defined in a file whose
//!   stem is `Qual` (module-style call), falling back to all free
//!   functions named `f`.
//! - `f(...)` free calls prefer free functions in the caller's own
//!   file, falling back to all free functions named `f`.
//!
//! Test functions are excluded from the graph entirely: they neither
//! resolve as callees nor act as callers.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::analyze::parser::{Callee, FnItem};

/// The resolved workspace call graph over non-test functions.
pub struct Graph {
    /// All parsed functions (test fns included, but unresolved).
    pub fns: Vec<FnItem>,
    /// `edges[i]` = outgoing `(callee index, call line)` pairs of fn `i`.
    pub edges: Vec<Vec<(usize, usize)>>,
    /// Indices of the simulation entry points.
    pub entries: Vec<usize>,
    /// Total resolved call edges (for the PERF line).
    pub edge_count: usize,
    /// Resolved targets of each worker closure's calls, keyed
    /// `(fn index, spawn index, worker index)`. Worker calls resolve
    /// with the *enclosing function* as caller context (`Self::` maps to
    /// its impl type, free calls prefer its file), so these are the BFS
    /// roots for worker-side reachability in the parallel pass.
    pub worker_edges: BTreeMap<(usize, usize, usize), Vec<(usize, usize)>>,
}

/// One hop of a witness chain: function index plus the line of the call
/// that led into it (`None` for the chain head).
#[derive(Clone, Debug)]
pub struct Hop {
    /// Index into `Graph::fns`.
    pub fn_idx: usize,
    /// Line of the call site in the *previous* hop's body.
    pub call_line: Option<usize>,
}

impl Graph {
    /// Builds the graph: resolves every call site of every non-test
    /// function and computes the entry-point set.
    pub fn build(fns: Vec<FnItem>) -> Graph {
        let mut by_method: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_free: HashMap<&str, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<(&str, &str), Vec<usize>> = HashMap::new();
        let mut known_types: HashMap<&str, ()> = HashMap::new();

        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            match &f.impl_type {
                Some(ty) => {
                    by_method.entry(&f.name).or_default().push(i);
                    by_qual.entry((ty, &f.name)).or_default().push(i);
                    known_types.insert(ty, ());
                }
                None => by_free.entry(&f.name).or_default().push(i),
            }
        }

        let file_stem = |file: &str| -> String {
            file.rsplit('/')
                .next()
                .unwrap_or(file)
                .trim_end_matches(".rs")
                .to_string()
        };

        let resolve = |caller: &FnItem, callee: &Callee| -> Vec<usize> {
            match callee {
                Callee::Method(name) => by_method.get(name.as_str()).cloned().unwrap_or_default(),
                Callee::Qualified(qual, name) => {
                    let ty = if qual == "Self" {
                        caller.impl_type.as_deref().unwrap_or("Self")
                    } else {
                        qual.as_str()
                    };
                    if let Some(v) = by_qual.get(&(ty, name.as_str())) {
                        v.clone()
                    } else if known_types.contains_key(ty) {
                        // A known impl type without that method:
                        // std-ish or derived — no workspace target.
                        Vec::new()
                    } else {
                        // Module-style qualifier: prefer free fns in
                        // the file named after the module.
                        let all = by_free.get(name.as_str()).cloned().unwrap_or_default();
                        let in_module: Vec<usize> = all
                            .iter()
                            .copied()
                            .filter(|&t| file_stem(&fns[t].file) == *qual)
                            .collect();
                        if in_module.is_empty() {
                            all
                        } else {
                            in_module
                        }
                    }
                }
                Callee::Free(name) => {
                    let all = by_free.get(name.as_str()).cloned().unwrap_or_default();
                    let local: Vec<usize> = all
                        .iter()
                        .copied()
                        .filter(|&t| fns[t].file == caller.file)
                        .collect();
                    if local.is_empty() {
                        all
                    } else {
                        local
                    }
                }
                // Macros have no workspace `fn` body to resolve into;
                // their argument tokens were scanned in place, so the
                // call site exists purely for the sink passes.
                Callee::Macro(_) => Vec::new(),
            }
        };

        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); fns.len()];
        let mut edge_count = 0usize;
        let mut worker_edges: BTreeMap<(usize, usize, usize), Vec<(usize, usize)>> =
            BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if f.is_test {
                continue;
            }
            for call in &f.calls {
                for t in resolve(f, &call.callee) {
                    edges[i].push((t, call.line));
                    edge_count += 1;
                }
            }
            for (si, sp) in f.spawns.iter().enumerate() {
                for (wi, w) in sp.workers.iter().enumerate() {
                    let e = worker_edges.entry((i, si, wi)).or_default();
                    for call in &w.calls {
                        for t in resolve(f, &call.callee) {
                            e.push((t, call.line));
                        }
                    }
                }
            }
        }

        let entries = find_entries(&fns);
        Graph {
            fns,
            edges,
            entries,
            edge_count,
            worker_edges,
        }
    }

    /// BFS from the simulation entry set. See [`Graph::reach_from`].
    pub fn reach(&self) -> (Vec<usize>, Vec<Option<(usize, usize)>>) {
        self.reach_from(&self.entries)
    }

    /// BFS from an arbitrary start set. Returns `(dist, parent)` where
    /// `parent[i] = (predecessor fn index, call line)` on a shortest
    /// path; unreachable functions have `dist == usize::MAX`.
    pub fn reach_from(&self, starts: &[usize]) -> (Vec<usize>, Vec<Option<(usize, usize)>>) {
        let n = self.fns.len();
        let mut dist = vec![usize::MAX; n];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; n];
        let mut q = VecDeque::new();
        for &e in starts {
            if dist[e] == usize::MAX {
                dist[e] = 0;
                q.push_back(e);
            }
        }
        while let Some(u) = q.pop_front() {
            for &(v, line) in &self.edges[u] {
                if dist[v] == usize::MAX {
                    dist[v] = dist[u] + 1;
                    parent[v] = Some((u, line));
                    q.push_back(v);
                }
            }
        }
        (dist, parent)
    }

    /// Reconstructs the shortest witness chain from an entry point down
    /// to `target`, using the parent pointers from [`Graph::reach`].
    pub fn witness(&self, parent: &[Option<(usize, usize)>], target: usize) -> Vec<Hop> {
        let mut chain = vec![Hop {
            fn_idx: target,
            call_line: None,
        }];
        let mut cur = target;
        while let Some((p, line)) = parent[cur] {
            chain.last_mut().expect("chain is never empty").call_line = Some(line); // lint:allow(expect)
            chain.push(Hop {
                fn_idx: p,
                call_line: None,
            });
            cur = p;
        }
        chain.reverse();
        chain
    }

    /// Renders a witness chain as one indented block, `file:line` per hop.
    pub fn render_witness(&self, chain: &[Hop], sink_desc: &str, sink_line: usize) -> String {
        let mut out = String::new();
        for (i, hop) in chain.iter().enumerate() {
            let f = &self.fns[hop.fn_idx];
            let arrow = if i == 0 { "  witness: " } else { "    -> " };
            let via = match chain.get(i.wrapping_sub(1)).filter(|_| i > 0) {
                Some(prev) => {
                    let pf = &self.fns[prev.fn_idx];
                    match prev.call_line {
                        Some(l) => format!("  [call at {}:{l}]", pf.file),
                        None => String::new(),
                    }
                }
                None => String::new(),
            };
            out.push_str(&format!(
                "{arrow}{} ({}:{}){via}\n",
                f.qualname(),
                f.file,
                f.line
            ));
        }
        let last = chain.last().map(|h| &self.fns[h.fn_idx]);
        if let Some(f) = last {
            out.push_str(&format!("    -> {sink_desc} @ {}:{sink_line}\n", f.file));
        }
        out
    }
}

/// Computes the simulation entry-point set:
///
/// - `Simulator::run` / `Simulator::run_until` (the engine step loop),
/// - every `handle` method of a `World` trait impl (overlay event
///   handlers),
/// - every `Ctx` method (the API surface handlers call back into),
/// - free `run` / `run_traced` functions under
///   `crates/core/src/experiments/` (experiment drivers).
fn find_entries(fns: &[FnItem]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let is_entry = match (&f.impl_type, &f.trait_name) {
            (Some(ty), _) if ty == "Simulator" && (f.name == "run" || f.name == "run_until") => {
                true
            }
            (Some(_), Some(tr)) if tr == "World" && f.name == "handle" => true,
            (Some(ty), _) if ty == "Ctx" => true,
            _ => {
                f.impl_type.is_none()
                    && (f.name == "run" || f.name == "run_traced")
                    && f.file.contains("crates/core/src/experiments/")
            }
        };
        if is_entry {
            out.push(i);
        }
    }
    out
}

/// Computes the *hot-path* entry set of the allocation-discipline pass —
/// deliberately narrower than [`find_entries`]: only code that runs per
/// simulated event / per routing query, not one-shot experiment drivers
/// or build paths:
///
/// - `Simulator::run` / `Simulator::run_until` (event dispatch),
/// - every `handle` method of a `World` trait impl,
/// - `Routing::route` / `Routing::path_links` (per-query table reads),
/// - `Underlay::latency_us` / `rtt_us` / `transfer_time` (the queries
///   every overlay decision bottoms out in),
/// - the kademlia per-message handlers `DhtNetwork::rpc` /
///   `DhtNetwork::lookup`,
/// - the bittorrent swarm round loop (`run_swarm_with`).
pub fn find_hot_entries(fns: &[FnItem]) -> Vec<usize> {
    let mut out = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let is_hot = match (&f.impl_type, &f.trait_name) {
            (Some(ty), _) if ty == "Simulator" && (f.name == "run" || f.name == "run_until") => {
                true
            }
            (Some(_), Some(tr)) if tr == "World" && f.name == "handle" => true,
            (Some(ty), _) if ty == "Routing" && (f.name == "route" || f.name == "path_links") => {
                true
            }
            (Some(ty), _)
                if ty == "Underlay"
                    && matches!(f.name.as_str(), "latency_us" | "rtt_us" | "transfer_time") =>
            {
                true
            }
            (Some(ty), _) if ty == "DhtNetwork" && (f.name == "rpc" || f.name == "lookup") => true,
            _ => {
                f.impl_type.is_none()
                    && f.name == "run_swarm_with"
                    && f.file.contains("crates/bittorrent/")
            }
        };
        if is_hot {
            out.push(i);
        }
    }
    out
}

/// Aggregated allocation-site inventory over hot-path-reachable code:
/// `(file, qualname, kind)` → count.
pub type AllocInventory = BTreeMap<(String, String, String), usize>;

/// Builds the allocation inventory over non-test, non-bin,
/// non-`alloc_exempt` functions reachable from the hot-path entry set
/// (`dist` from [`Graph::reach_from`] over [`find_hot_entries`]).
pub fn alloc_inventory(graph: &Graph, dist: &[usize]) -> AllocInventory {
    let mut inv = AllocInventory::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || f.is_bin || f.alloc_exempt || dist[i] == usize::MAX {
            continue;
        }
        for a in &f.allocs {
            *inv.entry((f.file.clone(), f.qualname(), a.kind.name().to_string()))
                .or_insert(0) += 1;
        }
    }
    inv
}

/// Aggregated panic-site inventory: `(file, qualname, kind, class)` →
/// count, where class is `"documented"` or `"bare"`.
pub type PanicInventory = BTreeMap<(String, String, String, String), usize>;

/// Builds the panic inventory over non-test, non-bin functions reachable
/// from the entry set.
pub fn panic_inventory(graph: &Graph, dist: &[usize]) -> PanicInventory {
    let mut inv = PanicInventory::new();
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || f.is_bin || dist[i] == usize::MAX {
            continue;
        }
        for p in &f.panics {
            let class = if p.documented { "documented" } else { "bare" };
            *inv.entry((
                f.file.clone(),
                f.qualname(),
                p.kind.name().to_string(),
                class.to_string(),
            ))
            .or_insert(0) += 1;
        }
    }
    inv
}

/// Aggregated truncating-cast inventory over sim-reachable code:
/// `(file, qualname, target type)` → count of *undocumented* sites.
pub type CastInventory = BTreeMap<(String, String, String), usize>;

/// Builds the truncating-cast inventory over non-test, non-bin functions
/// reachable from the entry set. Returns the inventory plus the number
/// of documented (`lint:allow(cast)`) sites, which the baseline header
/// reports as the remaining allowed count.
pub fn cast_inventory(graph: &Graph, dist: &[usize]) -> (CastInventory, usize) {
    let mut inv = CastInventory::new();
    let mut documented = 0usize;
    for (i, f) in graph.fns.iter().enumerate() {
        if f.is_test || f.is_bin || dist[i] == usize::MAX {
            continue;
        }
        for c in &f.casts {
            if c.documented {
                documented += 1;
                continue;
            }
            *inv.entry((f.file.clone(), f.qualname(), c.target.clone()))
                .or_insert(0) += 1;
        }
    }
    (inv, documented)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;
    use crate::analyze::parser::parse_file;

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let mut fns = Vec::new();
        for (label, src) in files {
            fns.extend(parse_file(label, &lex(src), false, false));
        }
        Graph::build(fns)
    }

    #[test]
    fn indirect_sink_reached_through_two_hops_with_witness() {
        let g = graph_of(&[
            (
                "crates/sim/src/engine.rs",
                "impl Simulator { fn run(&mut self) { helper(); } }\nfn helper() { leak(); }\n",
            ),
            (
                "crates/net/src/bad.rs",
                "fn leak() { let t = std::time::Instant::now(); }\n",
            ),
        ]);
        let (dist, parent) = g.reach();
        let leak = g
            .fns
            .iter()
            .position(|f| f.name == "leak")
            .expect("leak fn parsed"); // lint:allow(expect)
        assert_ne!(dist[leak], usize::MAX, "leak must be reachable");
        let chain = g.witness(&parent, leak);
        let names: Vec<String> = chain.iter().map(|h| g.fns[h.fn_idx].qualname()).collect();
        assert_eq!(names, vec!["Simulator::run", "helper", "leak"]);
        let rendered = g.render_witness(&chain, "Instant::now", g.fns[leak].sinks[0].line);
        assert!(rendered.contains("Simulator::run (crates/sim/src/engine.rs:1)"));
        assert!(rendered.contains("leak (crates/net/src/bad.rs:1)"));
        assert!(rendered.contains("Instant::now @ crates/net/src/bad.rs:1"));
    }

    #[test]
    fn world_handle_and_ctx_methods_are_entries() {
        let g = graph_of(&[(
            "crates/gnutella/src/sim.rs",
            "impl World<Ev> for G { fn handle(&mut self) {} }\nimpl Ctx<'_, E> { fn send(&mut self) {} }\nfn not_entry() {}\n",
        )]);
        let names: Vec<String> = g.entries.iter().map(|&i| g.fns[i].qualname()).collect();
        assert_eq!(names, vec!["G::handle", "Ctx::send"]);
    }

    #[test]
    fn test_fns_neither_call_nor_get_called() {
        let src = "impl Simulator { fn run(&mut self) {} }\n#[cfg(test)]\nmod tests {\n    fn t() { dangerous(); }\n}\nfn dangerous() {}\n";
        let g = graph_of(&[("crates/sim/src/engine.rs", src)]);
        let (dist, _) = g.reach();
        let d = g
            .fns
            .iter()
            .position(|f| f.name == "dangerous")
            .expect("parsed"); // lint:allow(expect)
        assert_eq!(dist[d], usize::MAX, "only a test fn calls dangerous");
    }

    #[test]
    fn free_calls_prefer_same_file_targets() {
        let g = graph_of(&[
            (
                "crates/core/src/experiments/e01.rs",
                "pub fn run() { step(); }\nfn step() {}\n",
            ),
            (
                "crates/core/src/experiments/e02.rs",
                "fn step() { loop_forever(); }\nfn loop_forever() {}\n",
            ),
        ]);
        let (dist, _) = g.reach();
        let e02_step = g
            .fns
            .iter()
            .position(|f| f.name == "step" && f.file.contains("e02"))
            .expect("parsed"); // lint:allow(expect)
        assert_eq!(
            dist[e02_step],
            usize::MAX,
            "e01::run must bind to its own file's step, not e02's"
        );
    }

    #[test]
    fn module_qualified_call_binds_to_file_stem() {
        let g = graph_of(&[
            ("crates/xtask/src/main.rs", "fn main() { lint::run(); }\n"),
            ("crates/xtask/src/lint.rs", "pub fn run() {}\n"),
            ("crates/core/src/experiments/e03.rs", "pub fn run() {}\n"),
        ]);
        let main = g.fns.iter().position(|f| f.name == "main").expect("parsed"); // lint:allow(expect)
        let targets: Vec<&str> = g.edges[main]
            .iter()
            .map(|&(t, _)| g.fns[t].file.as_str())
            .collect();
        assert_eq!(targets, vec!["crates/xtask/src/lint.rs"]);
    }

    #[test]
    fn trait_object_method_calls_resolve_to_every_impl() {
        // A call through `dyn Underlay` cannot be narrowed statically;
        // the over-approximation pins it to *every* impl method named
        // `latency_us`, keeping reachability sound for both impls.
        let g = graph_of(&[(
            "crates/net/src/underlay.rs",
            "impl Simulator { fn run(&mut self, u: &dyn Underlay) { u.latency_us(); } }\nimpl FlatUnderlay { fn latency_us(&self) -> u64 { 1 } }\nimpl GeoUnderlay { fn latency_us(&self) -> u64 { 2 } }\n",
        )]);
        let run = g.fns.iter().position(|f| f.name == "run").expect("parsed"); // lint:allow(expect)
        let targets: Vec<String> = g.edges[run]
            .iter()
            .map(|&(t, _)| g.fns[t].qualname())
            .collect();
        assert_eq!(
            targets,
            vec!["FlatUnderlay::latency_us", "GeoUnderlay::latency_us"]
        );
    }

    #[test]
    fn generic_bound_method_calls_resolve_to_every_impl() {
        // `fn drive<W: World>(w: &mut W)` — the bound erases the concrete
        // type, so `w.step()` pins to all impl methods named `step`, and
        // reachability flows into each.
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { fn run(&mut self) { drive(&mut self.w); } }\nfn drive<W: World>(w: &mut W) { w.step(); }\nimpl GnutellaWorld { fn step(&mut self) { let v = vec![1]; drop(v); } }\nimpl KadWorld { fn step(&mut self) {} }\n",
        )]);
        let (dist, _) = g.reach();
        for name in ["GnutellaWorld", "KadWorld"] {
            let i = g
                .fns
                .iter()
                .position(|f| f.impl_type.as_deref() == Some(name))
                .expect("parsed"); // lint:allow(expect)
            assert_ne!(dist[i], usize::MAX, "{name}::step must be reachable");
        }
    }

    #[test]
    fn hot_entry_set_is_the_per_event_surface() {
        let g = graph_of(&[
            (
                "crates/sim/src/engine.rs",
                "impl Simulator { fn run(&mut self) {} fn new() -> Self { Simulator }\n}\n",
            ),
            (
                "crates/net/src/routing.rs",
                "impl Routing { fn route(&self) {} fn path_links(&self) {} fn build(&mut self) {} }\n",
            ),
            (
                "crates/net/src/underlay.rs",
                "impl Underlay { fn latency_us(&self) {} fn rtt_us(&self) {} fn transfer_time(&self) {} fn from_topology() {} }\n",
            ),
            (
                "crates/kademlia/src/network.rs",
                "impl DhtNetwork { fn rpc(&mut self) {} fn lookup(&mut self) {} fn bootstrap(&mut self) {} }\n",
            ),
            (
                "crates/bittorrent/src/swarm.rs",
                "pub fn run_swarm_with() {}\nfn helper() {}\n",
            ),
            (
                "crates/gnutella/src/sim.rs",
                "impl World<Ev> for GnutellaSim { fn handle(&mut self) {} }\n",
            ),
        ]);
        let hot = find_hot_entries(&g.fns);
        let names: Vec<String> = hot.iter().map(|&i| g.fns[i].qualname()).collect();
        assert_eq!(
            names,
            vec![
                "Simulator::run",
                "Routing::route",
                "Routing::path_links",
                "Underlay::latency_us",
                "Underlay::rtt_us",
                "Underlay::transfer_time",
                "DhtNetwork::rpc",
                "DhtNetwork::lookup",
                "run_swarm_with",
                "GnutellaSim::handle",
            ]
        );
    }

    #[test]
    fn alloc_inventory_skips_exempt_and_unreachable_fns() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { fn run(&mut self) { hot_helper(); setup(); } }\nfn hot_helper() { let v = vec![1]; drop(v); }\n// lint:allow(alloc) — one-shot flush\nfn setup() { let s = format!(\"x\"); drop(s); }\nfn cold() { let b = Box::new(1u8); drop(b); }\n",
        )]);
        let hot = find_hot_entries(&g.fns);
        let (dist, _) = g.reach_from(&hot);
        let inv = alloc_inventory(&g, &dist);
        let keys: Vec<String> = inv
            .keys()
            .map(|(f, q, k)| format!("{f}::{q} {k}"))
            .collect();
        // `setup` is reachable but exempt; `cold` allocates but is
        // unreachable from the hot entry set; only `hot_helper` counts.
        assert_eq!(keys, vec!["crates/sim/src/engine.rs::hot_helper vec"]);
    }

    #[test]
    fn worker_calls_resolve_with_enclosing_fn_context() {
        // `Self::chunk` inside a worker closure must pin to the
        // enclosing impl type, and a free call must prefer the enclosing
        // file — the same rules as ordinary call sites.
        let g = graph_of(&[
            (
                "crates/net/src/routing.rs",
                "impl Routing {\n    fn build(&self) {\n        std::thread::scope(|s| {\n            s.spawn(move || Self::chunk(0));\n            s.spawn(move || merge());\n        });\n    }\n    fn chunk(_lo: usize) {}\n}\nfn merge() {}\n",
            ),
            ("crates/net/src/other.rs", "fn merge() {}\n"),
        ]);
        let build = g
            .fns
            .iter()
            .position(|f| f.name == "build")
            .expect("parsed"); // lint:allow(expect)
        let w0: Vec<String> = g.worker_edges[&(build, 0, 0)]
            .iter()
            .map(|&(t, _)| g.fns[t].qualname())
            .collect();
        assert_eq!(w0, vec!["Routing::chunk"]);
        let w1: Vec<&str> = g.worker_edges[&(build, 0, 1)]
            .iter()
            .map(|&(t, _)| g.fns[t].file.as_str())
            .collect();
        assert_eq!(w1, vec!["crates/net/src/routing.rs"]);
    }

    #[test]
    fn worker_method_chain_calls_pin_to_every_impl() {
        // A hazard hidden behind a method-call chain on a capture:
        // `state.cache().bump()` must resolve `bump` to the impl method
        // so the parallel pass can see its interior-mutability marker.
        let g = graph_of(&[(
            "crates/net/src/underlay.rs",
            "impl U {\n    fn go(&self, state: &S) {\n        std::thread::scope(|s| {\n            s.spawn(move || { state.cache().bump(); });\n        });\n    }\n}\nimpl RouteCache { fn bump(&self) { self.hits.set(self.hits.get() + 1); } }\n",
        )]);
        let go = g.fns.iter().position(|f| f.name == "go").expect("parsed"); // lint:allow(expect)
        let targets: Vec<String> = g.worker_edges[&(go, 0, 0)]
            .iter()
            .map(|&(t, _)| g.fns[t].qualname())
            .collect();
        assert!(
            targets.contains(&"RouteCache::bump".to_string()),
            "{targets:?}"
        );
        let bump = g.fns.iter().position(|f| f.name == "bump").expect("parsed"); // lint:allow(expect)
        assert!(!g.fns[bump].hazards.is_empty());
    }

    #[test]
    fn cast_inventory_counts_reachable_undocumented_sites() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { fn run(&mut self, n: usize) {\n    let a = n as u32;\n    let b = n as u16; // lint:allow(cast) — bound: n < 65536 structurally\n    drop((a, b));\n} }\nfn unreachable_helper(n: usize) -> u32 { n as u32 }\n",
        )]);
        let (dist, _) = g.reach();
        let (inv, documented) = cast_inventory(&g, &dist);
        let keys: Vec<String> = inv
            .iter()
            .map(|((f, q, t), n)| format!("{f}::{q} {t} x{n}"))
            .collect();
        assert_eq!(
            keys,
            vec!["crates/sim/src/engine.rs::Simulator::run u32 x1"]
        );
        assert_eq!(documented, 1);
    }

    #[test]
    fn panic_inventory_aggregates_reachable_sites_only() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { fn run(&mut self, o: Option<u8>) {\n    o.unwrap();\n    o.expect(\"invariant\"); // lint:allow(expect)\n} }\nfn unreachable_helper(o: Option<u8>) { o.unwrap(); }\n",
        )]);
        let (dist, _) = g.reach();
        let inv = panic_inventory(&g, &dist);
        let keys: Vec<String> = inv
            .keys()
            .map(|(f, q, k, c)| format!("{f}::{q} {k} {c}"))
            .collect();
        assert_eq!(
            keys,
            vec![
                "crates/sim/src/engine.rs::Simulator::run expect documented",
                "crates/sim/src/engine.rs::Simulator::run unwrap bare",
            ]
        );
    }
}
