//! A dependency-free Rust token lexer with source positions.
//!
//! `syn`/`proc-macro2` are unavailable offline, so the analyzer carries
//! its own lexer. It produces a flat token stream — identifiers,
//! punctuation, string/char/number literals, lifetimes — with a 1-based
//! line for every token, while stripping comments (line, and nested
//! block) and recording `lint:allow(...)` comments per line exactly like
//! the line lint does. Unlike the lint's line-blanking lexer, string
//! literal *contents* are kept: the registry pass needs the literal
//! component/kind/key arguments at emission call sites.

use std::collections::{BTreeMap, BTreeSet};

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `impl`, `HashMap`, …).
    Ident,
    /// String or byte-string literal (plain or raw); `text` holds the
    /// contents with simple escapes decoded.
    Str,
    /// Char or byte-char literal (contents discarded).
    Char,
    /// Numeric literal (contents kept verbatim).
    Num,
    /// Lifetime (`'a`, `'static`); `text` holds the name without `'`.
    Lifetime,
    /// One punctuation character (`{`, `:`, `!`, …). Multi-character
    /// operators arrive as consecutive single-char tokens.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Clone, Debug)]
pub struct Tok {
    /// What kind of token this is.
    pub kind: TokKind,
    /// Token text (see [`TokKind`] for per-kind contents).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: usize,
}

impl Tok {
    /// True when the token is punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.as_bytes() == [c as u8]
    }

    /// True when the token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
}

/// A lexed file: the token stream plus per-line `lint:allow` rule sets.
#[derive(Debug, Default)]
pub struct Lexed {
    /// The token stream in source order.
    pub toks: Vec<Tok>,
    /// 1-based line → rule names allowed on that line.
    pub allows: BTreeMap<usize, BTreeSet<String>>,
}

impl Lexed {
    /// True when `line` (or the line directly above) carries
    /// `lint:allow(rule)` — the same binding contract as the line lint.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows.get(&line).is_some_and(|s| s.contains(rule))
            || (line > 1
                && self
                    .allows
                    .get(&(line - 1))
                    .is_some_and(|s| s.contains(rule)))
    }
}

/// Lexes `source` into a token stream. Never fails: unterminated
/// constructs simply end the stream at end of input.
pub fn lex(source: &str) -> Lexed {
    let b: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                let text: String = b[start..i].iter().collect();
                record_allows(&text, line, &mut out.allows);
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1u32;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = b[start..i.min(b.len())].iter().collect();
                record_allows(&text, start_line, &mut out.allows);
            }
            '"' => {
                let start_line = line;
                let mut s = String::new();
                i += 1;
                while i < b.len() {
                    match b[i] {
                        '\\' => {
                            match b.get(i + 1) {
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some('r') => s.push('\r'),
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('\n') => line += 1, // line continuation
                                _ => {}
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            s.push('\n');
                            line += 1;
                            i += 1;
                        }
                        ch => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
            }
            'r' if matches!(b.get(i + 1), Some(&'"') | Some(&'#')) && raw_string_at(&b, i) => {
                let start_line = line;
                let mut j = i + 1;
                let mut hashes = 0usize;
                while b.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                // raw_string_at guaranteed b[j] == '"'.
                i = j + 1;
                let mut s = String::new();
                'raw: while i < b.len() {
                    if b[i] == '\n' {
                        line += 1;
                    } else if b[i] == '"' {
                        let mut k = i + 1;
                        let mut seen = 0usize;
                        while seen < hashes && b.get(k) == Some(&'#') {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            i = k;
                            break 'raw;
                        }
                    }
                    s.push(b[i]);
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: s,
                    line: start_line,
                });
            }
            '\'' => {
                // Char literal vs lifetime (same disambiguation as the lint).
                if b.get(i + 1) == Some(&'\\') {
                    i += 2;
                    while i < b.len() && b[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else if b.get(i + 2) == Some(&'\'') {
                    i += 3;
                    out.toks.push(Tok {
                        kind: TokKind::Char,
                        text: String::new(),
                        line,
                    });
                } else {
                    // Lifetime: 'ident with no closing quote.
                    let start = i + 1;
                    let mut j = start;
                    while j < b.len() && (b[j].is_alphanumeric() || b[j] == '_') {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: b[start..j].iter().collect(),
                        line,
                    });
                    i = j;
                }
            }
            // Byte-string prefixes: skip the `b` so the string / raw-string
            // branch handles the body next iteration. These arms only fire
            // when `b` starts a token (a preceding identifier would have
            // been consumed whole by the ident branch below).
            'b' if b.get(i + 1) == Some(&'"') => i += 1,
            'b' if b.get(i + 1) == Some(&'r') && raw_string_at(&b, i + 1) => i += 1,
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < b.len() && (b[i].is_alphanumeric() || b[i] == '_' || b[i] == '.') {
                    // Stop `1..=2` range punctuation from being eaten.
                    if b[i] == '.' && b.get(i + 1) == Some(&'.') {
                        break;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: b[start..i].iter().collect(),
                    line,
                });
            }
            c => {
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: c.to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// True when the `r` at `i` starts a raw string (`r"`, `r#"`, `r##"`, …)
/// rather than a raw identifier (`r#type`) or a plain ident.
fn raw_string_at(b: &[char], i: usize) -> bool {
    let mut j = i + 1;
    while b.get(j) == Some(&'#') {
        j += 1;
    }
    b.get(j) == Some(&'"')
}

/// Records every rule named in `lint:allow(a, b)` comments onto `line`.
/// Unlike the lint (which filters against its rule list), the analyzer
/// records every name — it additionally understands analyzer-only names
/// such as `index`.
fn record_allows(comment: &str, line: usize, allows: &mut BTreeMap<usize, BTreeSet<String>>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let tail = &rest[at + "lint:allow(".len()..];
        let Some(close) = tail.find(')') else { break };
        for rule in tail[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.entry(line).or_default().insert(rule.to_string());
            }
        }
        rest = &tail[close..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(l: &Lexed) -> Vec<(&str, usize)> {
        l.toks
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| (t.text.as_str(), t.line))
            .collect()
    }

    #[test]
    fn basic_stream_with_lines() {
        let l = lex("fn foo() {\n    bar();\n}\n");
        assert_eq!(idents(&l), vec![("fn", 1), ("foo", 1), ("bar", 2)]);
    }

    #[test]
    fn string_contents_are_kept_with_escapes_decoded() {
        let l = lex("emit(\"net\", \"a\\\"b\")");
        let strs: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["net", "a\"b"]);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let l = lex("let x = r#\"multi\nline \"q\" body\"#; r#type");
        let strs: Vec<(&str, usize)> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| (t.text.as_str(), t.line))
            .collect();
        assert_eq!(strs, vec![("multi\nline \"q\" body", 1)]);
        // Raw identifier survives as ident tokens, and line advanced past
        // the embedded newline.
        let last = l.toks.last().expect("tokens");
        assert_eq!((last.text.as_str(), last.line), ("type", 2));
    }

    #[test]
    fn comments_stripped_and_allows_recorded() {
        let l = lex("a(); // lint:allow(unwrap, index)\n/* nested /* deep */ lint:allow(threads) */\nb();\n");
        assert!(l.allowed(1, "unwrap"));
        assert!(l.allowed(1, "index"));
        assert!(l.allowed(2, "threads"));
        assert!(l.allowed(3, "threads"), "allow reaches the next line");
        assert!(!l.allowed(3, "unwrap"));
        assert_eq!(idents(&l), vec![("a", 1), ("b", 3)]);
    }

    #[test]
    fn lifetimes_chars_numbers() {
        let l = lex("fn f<'a>(x: &'a str) -> char { '\\n' } let n = 1_000u64; let r = 0..=2;");
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
        assert!(l.toks.iter().any(|t| t.kind == TokKind::Char));
        assert!(l
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1_000u64"));
        // Range `0..=2` keeps its punctuation.
        assert!(l.toks.iter().filter(|t| t.is_punct('.')).count() >= 2);
    }

    #[test]
    fn byte_strings_lex_as_strings() {
        let l = lex("let x = b\"bytes\"; let y = br#\"raw bytes\"#;");
        let strs: Vec<&str> = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Str)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(strs, vec!["bytes", "raw bytes"]);
    }
}
