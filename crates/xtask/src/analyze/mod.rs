//! `xtask analyze` — syntax-aware sim-purity analyzer.
//!
//! Where `xtask lint` checks tokens line-by-line, this module parses the
//! whole workspace into a call graph and proves *reachability* facts:
//!
//! - **Purity**: no call path from a simulation entry point (the engine
//!   step loop, overlay `World::handle` impls, `Ctx` methods, experiment
//!   drivers) reaches a wallclock / entropy / thread-spawn sink, except
//!   through the audited boundaries in [`crate::boundaries`]. Each
//!   violation carries the shortest witness call chain, `file:line` per
//!   hop.
//! - **Panic reachability**: every unwrap / expect / panic! / indexing
//!   site reachable from the entry points is inventoried against the
//!   checked-in baseline `ci/analyze_panic_baseline.txt`; new sites fail,
//!   removed sites are reported as burn-down progress.
//! - **Registry drift**: emitted trace kinds and metrics keys must agree
//!   with `uap_sim::trace::registry` and with the tables in
//!   `docs/OBSERVABILITY.md` (see [`registry_check`]).
//! - **Parallel-region discipline** (`--pass=par`): every thread-spawn
//!   site must carry a [`crate::boundaries::PARALLEL_REGIONS`] manifest
//!   entry (drift in either direction fails), and worker closures must
//!   be free of determinism hazards not audited by the entry (see
//!   [`par`]).
//! - **Truncating-cast ratchet** (`--pass=cast`): sim-reachable
//!   truncating `as` casts are inventoried against
//!   `ci/analyze_cast_baseline.txt`; new sites fail, `lint:allow(cast)`
//!   documents a structural bound.
//!
//! Everything is hand-rolled on the workspace's own lexer — no `syn`,
//! no network, deterministic output. See `docs/STATIC_ANALYSIS.md`.

pub mod graph;
pub mod lexer;
pub mod par;
pub mod parser;
pub mod registry_check;

use std::path::{Path, PathBuf};

use graph::Graph;

/// Relative path of the panic-site baseline file.
pub const BASELINE_PATH: &str = "ci/analyze_panic_baseline.txt";

/// Relative path of the allocation-site baseline file.
pub const ALLOC_BASELINE_PATH: &str = "ci/analyze_alloc_baseline.txt";

/// Relative path of the truncating-cast baseline file.
pub const CAST_BASELINE_PATH: &str = "ci/analyze_cast_baseline.txt";

/// Which ratcheted baseline(s) an `--update-baseline` run regenerates.
/// Pass-scoped so refreshing one baseline can never silently rewrite
/// the others.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateScope {
    /// Only `ci/analyze_panic_baseline.txt`.
    Panic,
    /// Only `ci/analyze_alloc_baseline.txt`.
    Alloc,
    /// Only `ci/analyze_cast_baseline.txt`.
    Cast,
    /// Every baseline file (the explicit `--update-baseline` with no
    /// scope).
    All,
}

impl UpdateScope {
    fn updates_panic(self) -> bool {
        matches!(self, UpdateScope::Panic | UpdateScope::All)
    }
    fn updates_alloc(self) -> bool {
        matches!(self, UpdateScope::Alloc | UpdateScope::All)
    }
    fn updates_cast(self) -> bool {
        matches!(self, UpdateScope::Cast | UpdateScope::All)
    }
}

/// What to do with the ratcheted baselines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineMode {
    /// Compare against the checked-in baselines; new sites are violations.
    Check,
    /// Regenerate the scoped baseline(s) from the current inventory.
    Update(UpdateScope),
}

/// Which passes to run. The scoped variants run exactly one pass so CI
/// can surface each as its own named step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassFilter {
    /// Purity + panic + allocation + parallel + cast + registry (the
    /// default).
    All,
    /// Only the allocation-discipline pass.
    Alloc,
    /// Only the parallel-region discipline pass.
    Par,
    /// Only the truncating-cast ratchet pass.
    Cast,
}

/// Corpus and graph sizes, for the PERF line.
#[derive(Clone, Copy, Debug, Default)]
pub struct Stats {
    pub files: usize,
    pub fns: usize,
    pub entries: usize,
    pub edges: usize,
    /// Hot-path entry points of the allocation pass.
    pub hot_entries: usize,
    /// Allocation sites in the current hot-path inventory.
    pub alloc_sites: usize,
    /// Thread-spawn sites seen by the parallel pass.
    pub spawn_sites: usize,
    /// Undocumented truncating casts in the current sim-reachable
    /// inventory.
    pub cast_sites: usize,
}

/// The result of one analyzer run.
#[derive(Debug, Default)]
pub struct Report {
    /// Hard failures: each one line (or block, for witness chains).
    pub violations: Vec<String>,
    /// Informational output (burn-down progress, baseline updates).
    pub notes: Vec<String>,
    /// Corpus sizes.
    pub stats: Stats,
}

/// Runs the selected passes over the workspace rooted at `root`.
pub fn run_passes(root: &Path, mode: BaselineMode, passes: PassFilter) -> Report {
    let mut report = Report::default();
    let files = collect_workspace(root);
    report.stats.files = files.len();

    let mut fns = Vec::new();
    for f in &files {
        let Ok(source) = std::fs::read_to_string(&f.path) else {
            continue;
        };
        let lexed = lexer::lex(&source);
        fns.extend(parser::parse_file(&f.label, &lexed, f.is_test, f.is_bin));
    }
    report.stats.fns = fns.len();

    let g = Graph::build(fns);
    report.stats.entries = g.entries.len();
    report.stats.edges = g.edge_count;
    if g.entries.is_empty() {
        report.violations.push(
            "analyze: found no simulation entry points — the parser or the entry heuristics \
             regressed; refusing to vacuously pass"
                .to_string(),
        );
        return report;
    }

    let run_all = passes == PassFilter::All;

    if run_all || passes == PassFilter::Alloc {
        let hot = graph::find_hot_entries(&g.fns);
        report.stats.hot_entries = hot.len();
        if hot.is_empty() {
            report.violations.push(
                "analyze: found no hot-path entry points — the parser or the hot-entry \
                 heuristics regressed; refusing to vacuously pass the allocation pass"
                    .to_string(),
            );
            return report;
        }
        let (hot_dist, hot_parent) = g.reach_from(&hot);
        alloc_pass(root, &g, &hot_dist, &hot_parent, mode, &mut report);
    }

    if run_all || passes == PassFilter::Par {
        par::par_pass(&g, &crate::boundaries::PARALLEL_REGIONS, &mut report);
    }

    if run_all || passes == PassFilter::Cast {
        let (dist, parent) = g.reach();
        cast_pass(root, &g, &dist, mode, &mut report);
        if run_all {
            report.violations.extend(purity_pass(&g, &dist, &parent));
            panic_pass(root, &g, &dist, mode, &mut report);
            report.violations.extend(registry_check::run(root, &g.fns));
        }
    }
    report
}

/// Purity pass: unaudited sinks in functions reachable from the entry
/// set, each with its shortest witness chain.
fn purity_pass(g: &Graph, dist: &[usize], parent: &[Option<(usize, usize)>]) -> Vec<String> {
    let mut out = Vec::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.is_test || dist[i] == usize::MAX {
            continue;
        }
        for s in &f.sinks {
            if s.audited {
                continue;
            }
            let chain = g.witness(parent, i);
            let kind = match s.kind {
                parser::SinkKind::Wallclock => "wallclock",
                parser::SinkKind::Entropy => "entropy",
                parser::SinkKind::Thread => "thread-spawn",
            };
            out.push(format!(
                "purity: {}:{}: `{}` in `{}` is reachable from the sim entry points \
                 ({kind} sink outside the audited boundaries)\n{}",
                f.file,
                s.line,
                s.what,
                f.qualname(),
                g.render_witness(&chain, &s.what, s.line)
            ));
        }
    }
    out
}

/// Allocation-discipline pass: hot-path allocation inventory vs the
/// ratcheted `ci/analyze_alloc_baseline.txt` (or its regeneration).
/// New / grown keys fail with the shortest witness chain from a hot
/// entry point; shrunk keys are reported as burn-down progress.
fn alloc_pass(
    root: &Path,
    g: &Graph,
    dist: &[usize],
    parent: &[Option<(usize, usize)>],
    mode: BaselineMode,
    report: &mut Report,
) {
    let inv = graph::alloc_inventory(g, dist);
    report.stats.alloc_sites = inv.values().sum();
    let path = root.join(ALLOC_BASELINE_PATH);
    if let BaselineMode::Update(scope) = mode {
        if scope.updates_alloc() {
            let body = render_alloc_baseline(&inv);
            match std::fs::write(&path, body) {
                Ok(()) => report.notes.push(format!(
                    "analyze: wrote {} entries ({} sites) to {ALLOC_BASELINE_PATH}",
                    inv.len(),
                    report.stats.alloc_sites
                )),
                Err(e) => report
                    .violations
                    .push(format!("analyze: cannot write {ALLOC_BASELINE_PATH}: {e}")),
            }
            return;
        }
    }
    let Ok(body) = std::fs::read_to_string(&path) else {
        report.violations.push(format!(
            "analyze: missing {ALLOC_BASELINE_PATH} — run `cargo run -p xtask -- analyze \
             --update-baseline=alloc` and commit the result"
        ));
        return;
    };
    let baseline = parse_alloc_baseline(&body);
    for (key, &count) in &inv {
        let (file, qual, kind) = key;
        match baseline.get(key) {
            None => {
                let (lines, witness) = alloc_site_evidence(g, file, qual, kind, parent);
                report.violations.push(format!(
                    "alloc: {file}:{lines}: new `{kind}` allocation site(s) in `{qual}` \
                     reachable from the hot-path entry set; reuse a scratch buffer, hoist the \
                     allocation out of the per-event path, or document a one-shot path with \
                     `lint:allow(alloc)` on the fn (baseline: {ALLOC_BASELINE_PATH})\n{witness}"
                ));
            }
            Some(&b) if count > b => report.violations.push(format!(
                "alloc: {file}: `{qual}` grew from {b} to {count} `{kind}` allocation site(s) \
                 reachable from the hot-path entry set (baseline: {ALLOC_BASELINE_PATH})"
            )),
            Some(_) => {}
        }
    }
    let mut gone = 0usize;
    for (key, &b) in &baseline {
        let now = inv.get(key).copied().unwrap_or(0);
        if now < b {
            gone += b - now;
        }
    }
    if gone > 0 {
        report.notes.push(format!(
            "analyze: {gone} baselined allocation site(s) no longer on the hot path — run \
             `--update-baseline=alloc` to ratchet {ALLOC_BASELINE_PATH} down"
        ));
    }
}

/// Comma-joined lines of the alloc sites behind one inventory key, plus
/// the rendered shortest witness chain from a hot entry point into the
/// offending function.
fn alloc_site_evidence(
    g: &Graph,
    file: &str,
    qual: &str,
    kind: &str,
    parent: &[Option<(usize, usize)>],
) -> (String, String) {
    let mut lines: Vec<usize> = Vec::new();
    let mut witness = String::new();
    for (i, f) in g.fns.iter().enumerate() {
        if f.file != file || f.qualname() != qual {
            continue;
        }
        let sites: Vec<&parser::AllocSite> =
            f.allocs.iter().filter(|a| a.kind.name() == kind).collect();
        if sites.is_empty() {
            continue;
        }
        lines.extend(sites.iter().map(|a| a.line));
        if witness.is_empty() {
            let chain = g.witness(parent, i);
            let first = sites[0];
            witness = g.render_witness(&chain, &first.what, first.line);
        }
    }
    lines.sort_unstable();
    lines.dedup();
    let lines = lines
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",");
    (lines, witness)
}

/// Renders the alloc inventory as the checked-in baseline text.
fn render_alloc_baseline(inv: &graph::AllocInventory) -> String {
    let mut out = String::from(
        "# Hot-path allocation baseline — generated by `cargo run -p xtask -- analyze \
         --update-baseline=alloc`.\n\
         # Each line: <count>\\t<file>::<fn>\\t<kind>, sorted.\n\
         # New hot-path allocation sites fail CI; burn this list down, never up.\n",
    );
    for ((file, qual, kind), count) in inv {
        out.push_str(&format!("{count}\t{file}::{qual}\t{kind}\n"));
    }
    out
}

/// Parses the alloc baseline text back into an inventory.
fn parse_alloc_baseline(body: &str) -> graph::AllocInventory {
    let mut inv = graph::AllocInventory::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        let [count, site, kind] = parts.as_slice() else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        let Some(split) = site.find(".rs::") else {
            continue;
        };
        let (file, qual) = site.split_at(split + 3);
        inv.insert(
            (
                file.to_string(),
                qual.trim_start_matches("::").to_string(),
                kind.to_string(),
            ),
            count,
        );
    }
    inv
}

/// Truncating-cast pass: sim-reachable cast inventory vs the ratcheted
/// `ci/analyze_cast_baseline.txt` (or its regeneration). New / grown
/// keys fail with the offending source lines; shrunk keys are reported
/// as burn-down progress. Sites documented with `lint:allow(cast)` are
/// excluded from the inventory but counted in the baseline header.
fn cast_pass(root: &Path, g: &Graph, dist: &[usize], mode: BaselineMode, report: &mut Report) {
    let (inv, documented) = graph::cast_inventory(g, dist);
    report.stats.cast_sites = inv.values().sum();
    let path = root.join(CAST_BASELINE_PATH);
    if let BaselineMode::Update(scope) = mode {
        if scope.updates_cast() {
            let body = render_cast_baseline(&inv, documented);
            match std::fs::write(&path, body) {
                Ok(()) => report.notes.push(format!(
                    "analyze: wrote {} entries ({} sites, {documented} documented via \
                     lint:allow(cast)) to {CAST_BASELINE_PATH}",
                    inv.len(),
                    report.stats.cast_sites
                )),
                Err(e) => report
                    .violations
                    .push(format!("analyze: cannot write {CAST_BASELINE_PATH}: {e}")),
            }
            return;
        }
    }
    let Ok(body) = std::fs::read_to_string(&path) else {
        report.violations.push(format!(
            "analyze: missing {CAST_BASELINE_PATH} — run `cargo run -p xtask -- analyze \
             --update-baseline=cast` and commit the result"
        ));
        return;
    };
    let baseline = parse_cast_baseline(&body);
    for (key, &count) in &inv {
        let (file, qual, target) = key;
        match baseline.get(key) {
            None => {
                let lines = cast_site_lines(g, file, qual, target);
                report.violations.push(format!(
                    "cast: {file}:{lines}: new truncating `as {target}` site(s) in `{qual}` \
                     reachable from the sim entry points; widen the type, use a checked \
                     conversion (`try_into` with the bound handled), or document a structural \
                     bound with `lint:allow(cast)` (baseline: {CAST_BASELINE_PATH})"
                ));
            }
            Some(&b) if count > b => report.violations.push(format!(
                "cast: {file}: `{qual}` grew from {b} to {count} truncating `as {target}` \
                 site(s) reachable from the sim entry points (baseline: {CAST_BASELINE_PATH})"
            )),
            Some(_) => {}
        }
    }
    let mut gone = 0usize;
    for (key, &b) in &baseline {
        let now = inv.get(key).copied().unwrap_or(0);
        if now < b {
            gone += b - now;
        }
    }
    if gone > 0 {
        report.notes.push(format!(
            "analyze: {gone} baselined truncating cast(s) no longer present — run \
             `--update-baseline=cast` to ratchet {CAST_BASELINE_PATH} down"
        ));
    }
}

/// Comma-joined source lines of the undocumented casts behind one
/// inventory key.
fn cast_site_lines(g: &Graph, file: &str, qual: &str, target: &str) -> String {
    let mut lines: Vec<usize> = g
        .fns
        .iter()
        .filter(|f| f.file == file && f.qualname() == qual)
        .flat_map(|f| &f.casts)
        .filter(|c| c.target == target && !c.documented)
        .map(|c| c.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the cast inventory as the checked-in baseline text. The
/// header records how many sites are documented via `lint:allow(cast)`
/// (and therefore *not* listed), so reviewers see the full count.
fn render_cast_baseline(inv: &graph::CastInventory, documented: usize) -> String {
    let mut out = format!(
        "# Truncating-cast baseline — generated by `cargo run -p xtask -- analyze \
         --update-baseline=cast`.\n\
         # Each line: <count>\\t<file>::<fn>\\t<target type>, sorted.\n\
         # Sites documented via `lint:allow(cast)` (excluded below): {documented}\n\
         # New sim-reachable truncating casts fail CI; burn this list down, never up.\n"
    );
    for ((file, qual, target), count) in inv {
        out.push_str(&format!("{count}\t{file}::{qual}\t{target}\n"));
    }
    out
}

/// Parses the cast baseline text back into an inventory.
fn parse_cast_baseline(body: &str) -> graph::CastInventory {
    let mut inv = graph::CastInventory::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        let [count, site, target] = parts.as_slice() else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        let Some(split) = site.find(".rs::") else {
            continue;
        };
        let (file, qual) = site.split_at(split + 3);
        inv.insert(
            (
                file.to_string(),
                qual.trim_start_matches("::").to_string(),
                target.to_string(),
            ),
            count,
        );
    }
    inv
}

/// Panic pass: inventory vs baseline (or baseline regeneration).
fn panic_pass(root: &Path, g: &Graph, dist: &[usize], mode: BaselineMode, report: &mut Report) {
    let inv = graph::panic_inventory(g, dist);
    let path = root.join(BASELINE_PATH);
    match mode {
        BaselineMode::Update(scope) if scope.updates_panic() => {
            let body = render_baseline(&inv);
            match std::fs::write(&path, body) {
                Ok(()) => report.notes.push(format!(
                    "analyze: wrote {} entries to {BASELINE_PATH}",
                    inv.len()
                )),
                Err(e) => report
                    .violations
                    .push(format!("analyze: cannot write {BASELINE_PATH}: {e}")),
            }
        }
        _ => {
            let Ok(body) = std::fs::read_to_string(&path) else {
                report.violations.push(format!(
                    "analyze: missing {BASELINE_PATH} — run `cargo run -p xtask -- analyze \
                     --update-baseline=panic` and commit the result"
                ));
                return;
            };
            let baseline = parse_baseline(&body);
            for (key, &count) in &inv {
                let (file, qual, kind, class) = key;
                match baseline.get(key) {
                    None => {
                        let lines = site_lines(g, file, qual, kind, class);
                        report.violations.push(format!(
                            "panics: {file}:{lines}: new {class} {kind} site(s) in `{qual}` \
                             reachable from the engine step loop; document the invariant with \
                             `lint:allow({kind})` or handle the None/Err case \
                             (baseline: {BASELINE_PATH})"
                        ));
                    }
                    Some(&b) if count > b => report.violations.push(format!(
                        "panics: {file}: `{qual}` grew from {b} to {count} {class} {kind} \
                         site(s) reachable from the engine step loop (baseline: {BASELINE_PATH})"
                    )),
                    Some(_) => {}
                }
            }
            let mut gone = 0usize;
            for (key, &b) in &baseline {
                let now = inv.get(key).copied().unwrap_or(0);
                if now < b {
                    gone += b - now;
                }
            }
            if gone > 0 {
                report.notes.push(format!(
                    "analyze: {gone} baselined panic site(s) no longer reachable — run \
                     `--update-baseline` to ratchet {BASELINE_PATH} down"
                ));
            }
        }
    }
}

/// Comma-joined source lines of the panic sites behind one inventory
/// key, so a baseline miss points at the exact expressions.
fn site_lines(g: &Graph, file: &str, qual: &str, kind: &str, class: &str) -> String {
    let mut lines: Vec<usize> = g
        .fns
        .iter()
        .filter(|f| f.file == file && f.qualname() == qual)
        .flat_map(|f| &f.panics)
        .filter(|p| p.kind.name() == kind && (p.documented == (class == "documented")))
        .map(|p| p.line)
        .collect();
    lines.sort_unstable();
    lines.dedup();
    lines
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

/// Renders the inventory as the checked-in baseline text.
fn render_baseline(inv: &graph::PanicInventory) -> String {
    let mut out = String::from(
        "# Panic-reachability baseline — generated by `cargo run -p xtask -- analyze \
         --update-baseline=panic`.\n\
         # Each line: <count>\\t<file>::<fn>\\t<kind>\\t<documented|bare>, sorted.\n\
         # New reachable panic sites fail CI; burn this list down, never up.\n",
    );
    for ((file, qual, kind, class), count) in inv {
        out.push_str(&format!("{count}\t{file}::{qual}\t{kind}\t{class}\n"));
    }
    out
}

/// Parses the baseline text back into an inventory.
fn parse_baseline(body: &str) -> graph::PanicInventory {
    let mut inv = graph::PanicInventory::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let parts: Vec<&str> = line.split('\t').collect();
        let [count, site, kind, class] = parts.as_slice() else {
            continue;
        };
        let Ok(count) = count.parse::<usize>() else {
            continue;
        };
        // `<file>::<fn>` — the file part ends at the first `::` after
        // the final `/`, i.e. split on the first `::` past the dir part.
        let Some(split) = site.find(".rs::") else {
            continue;
        };
        let (file, qual) = site.split_at(split + 3);
        inv.insert(
            (
                file.to_string(),
                qual.trim_start_matches("::").to_string(),
                kind.to_string(),
                class.to_string(),
            ),
            count,
        );
    }
    inv
}

/// One workspace source file to analyze.
struct SourceFile {
    path: PathBuf,
    label: String,
    is_test: bool,
    is_bin: bool,
}

/// Collects the same file set as `xtask lint`: `crates/*/src`,
/// `crates/*/tests`, and the root `src/` + `tests/`. `compat/` (vendored
/// stubs) lives outside these roots and is skipped by construction.
fn collect_workspace(root: &Path) -> Vec<SourceFile> {
    let mut out = Vec::new();
    let mut push_tree = |dir: PathBuf, is_test: bool| {
        let mut stack = vec![dir];
        while let Some(d) = stack.pop() {
            let Ok(entries) = std::fs::read_dir(&d) else {
                continue;
            };
            let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
            paths.sort();
            for p in paths {
                if p.is_dir() {
                    stack.push(p);
                } else if p.extension().is_some_and(|e| e == "rs") {
                    let label = p
                        .strip_prefix(root)
                        .unwrap_or(&p)
                        .to_string_lossy()
                        .replace('\\', "/");
                    // The xtask crate is build tooling end to end: like
                    // `main.rs` / `src/bin/` code it may abort freely,
                    // so it stays out of the panic inventory.
                    let is_bin = p.file_name().is_some_and(|n| n == "main.rs")
                        || p.components().any(|c| c.as_os_str() == "bin")
                        || label.starts_with("crates/xtask/");
                    out.push(SourceFile {
                        path: p,
                        label,
                        is_test,
                        is_bin,
                    });
                }
            }
        }
    };

    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crates: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            push_tree(krate.join("src"), false);
            push_tree(krate.join("tests"), true);
        }
    }
    push_tree(root.join("src"), false);
    push_tree(root.join("tests"), true);

    out.sort_by(|a, b| a.label.cmp(&b.label));
    out
}

/// Renders the report for the CLI. Returns `true` when clean.
pub fn print_report(report: &Report) -> bool {
    for n in &report.notes {
        println!("{n}");
    }
    for v in &report.violations {
        println!("{v}");
    }
    if report.violations.is_empty() {
        println!(
            "analyze: ok ({} files, {} fns, {} entry points, {} call edges)",
            report.stats.files, report.stats.fns, report.stats.entries, report.stats.edges
        );
        true
    } else {
        println!("analyze: {} violation(s)", report.violations.len());
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Graph;
    use lexer::lex;
    use parser::parse_file;

    fn workspace_root() -> PathBuf {
        // crates/xtask -> crates -> workspace root
        Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("xtask lives two levels under the workspace root") // lint:allow(expect)
            .to_path_buf()
    }

    fn graph_of(files: &[(&str, &str)]) -> Graph {
        let mut fns = Vec::new();
        for (label, src) in files {
            fns.extend(parse_file(label, &lex(src), false, false));
        }
        Graph::build(fns)
    }

    #[test]
    fn synthetic_indirect_leak_is_caught_with_witness_chain() {
        // Entry -> helper -> leak() which calls Instant::now: the purity
        // pass must flag it and the witness must name every hop with
        // file:line.
        let g = graph_of(&[
            (
                "crates/sim/src/engine.rs",
                "impl Simulator {\n    pub fn run(&mut self) {\n        helper();\n    }\n}\npub fn helper() {\n    leak();\n}\n",
            ),
            (
                "crates/net/src/bad.rs",
                "pub fn leak() {\n    let _t = std::time::Instant::now();\n}\n",
            ),
        ]);
        let (dist, parent) = g.reach();
        let v = purity_pass(&g, &dist, &parent);
        assert_eq!(v.len(), 1, "{v:?}");
        let msg = &v[0];
        assert!(msg.contains("crates/net/src/bad.rs:2"), "{msg}");
        assert!(msg.contains("Instant::now"), "{msg}");
        assert!(
            msg.contains("Simulator::run (crates/sim/src/engine.rs:2)"),
            "{msg}"
        );
        assert!(msg.contains("helper (crates/sim/src/engine.rs:6)"), "{msg}");
        assert!(msg.contains("leak (crates/net/src/bad.rs:1)"), "{msg}");
        assert!(
            msg.contains("[call at crates/sim/src/engine.rs:3]"),
            "{msg}"
        );
    }

    #[test]
    fn audited_boundary_sinks_are_exempt() {
        // The WallTimer quarantine in crates/sim/src/trace.rs and the
        // fork-join boundaries may touch their sinks when the site
        // carries the lint:allow — no purity violation.
        let g = graph_of(&[
            (
                "crates/sim/src/engine.rs",
                "impl Simulator { pub fn run(&mut self) { WallTimer::start(); par(); } }\n",
            ),
            (
                "crates/sim/src/trace.rs",
                "impl WallTimer { pub fn start() { let _ = std::time::Instant::now(); // lint:allow(wallclock)\n } }\n",
            ),
            (
                "crates/net/src/routing.rs",
                "pub fn par() { std::thread::scope(|s| {}); // lint:allow(threads)\n }\n",
            ),
        ]);
        let (dist, parent) = g.reach();
        let v = purity_pass(&g, &dist, &parent);
        assert!(v.is_empty(), "{v:?}");
        // The same thread sink outside the boundary file is flagged even
        // with an allow comment.
        let g = graph_of(&[
            (
                "crates/sim/src/engine.rs",
                "impl Simulator { pub fn run(&mut self) { par(); } }\n",
            ),
            (
                "crates/net/src/host.rs",
                "pub fn par() { std::thread::scope(|s| {}); // lint:allow(threads)\n }\n",
            ),
        ]);
        let (dist, parent) = g.reach();
        let v = purity_pass(&g, &dist, &parent);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("thread-spawn sink"));
    }

    #[test]
    fn baseline_roundtrip_and_new_site_detection() {
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { pub fn run(&mut self, o: Option<u8>) { o.unwrap(); } }\n",
        )]);
        let (dist, _) = g.reach();
        let inv = graph::panic_inventory(&g, &dist);
        let text = render_baseline(&inv);
        let parsed = parse_baseline(&text);
        assert_eq!(parsed, inv, "baseline must round-trip through text");

        // A newly introduced reachable unwrap (not in the baseline) fails.
        let g2 = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { pub fn run(&mut self, o: Option<u8>) { o.unwrap(); } }\npub fn helper(o: Option<u8>) { o.unwrap(); }\nimpl Ctx { pub fn now(&self, o: Option<u8>) { helper(o); } }\n",
        )]);
        let (dist2, _) = g2.reach();
        let inv2 = graph::panic_inventory(&g2, &dist2);
        let new_keys: Vec<_> = inv2.keys().filter(|k| !inv.contains_key(*k)).collect();
        assert_eq!(new_keys.len(), 1);
        assert_eq!(new_keys[0].1, "helper");
    }

    /// Builds a minimal on-disk workspace under `target/` (deterministic
    /// path, outside the real analyzer roots) with one hot entry that
    /// allocates per event and one bare unwrap, so both baselines have
    /// content to write.
    fn synthetic_root(name: &str) -> PathBuf {
        let root = workspace_root()
            .join("target")
            .join("analyze-test")
            .join(name);
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("crates/sim/src");
        std::fs::create_dir_all(&src_dir).expect("create synthetic src"); // lint:allow(expect)
        std::fs::create_dir_all(root.join("ci")).expect("create synthetic ci"); // lint:allow(expect)
        std::fs::write(
            src_dir.join("engine.rs"),
            "impl Simulator { pub fn run(&mut self, o: Option<u8>) {\n    let v = vec![o.unwrap()];\n    drop(v);\n} }\n",
        )
        .expect("write synthetic engine"); // lint:allow(expect)
        root
    }

    /// Violations minus the registry pass's (a synthetic root has no
    /// trace registry or OBSERVABILITY.md — that pass is not under test).
    fn non_registry(report: &Report) -> Vec<String> {
        report
            .violations
            .iter()
            .filter(|v| !v.starts_with("registry:"))
            .cloned()
            .collect()
    }

    #[test]
    fn update_scope_panic_does_not_touch_the_other_baselines() {
        let root = synthetic_root("scope-panic");
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::Panic),
            PassFilter::All,
        );
        // The alloc and cast passes ran in Check mode against missing
        // baselines — those are the only violations; the panic baseline
        // was written.
        assert!(root.join(BASELINE_PATH).exists());
        assert!(!root.join(ALLOC_BASELINE_PATH).exists());
        assert!(!root.join(CAST_BASELINE_PATH).exists());
        let v = non_registry(&report);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.contains(ALLOC_BASELINE_PATH)), "{v:?}");
        assert!(v.iter().any(|v| v.contains(CAST_BASELINE_PATH)), "{v:?}");
    }

    #[test]
    fn update_scope_alloc_does_not_touch_the_panic_baseline() {
        let root = synthetic_root("scope-alloc");
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::Alloc),
            PassFilter::All,
        );
        assert!(root.join(ALLOC_BASELINE_PATH).exists());
        assert!(!root.join(BASELINE_PATH).exists());
        let v = non_registry(&report);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().any(|v| v.contains(BASELINE_PATH)), "{v:?}");

        // After scoping the panic and cast updates too, Check mode is
        // clean and the alloc baseline carries the vec site (in-loop
        // class not armed here: the vec! sits at fn top, so kind is
        // plain `vec`).
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::Panic),
            PassFilter::All,
        );
        let v = non_registry(&report);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains(CAST_BASELINE_PATH), "{v:?}");
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::Cast),
            PassFilter::All,
        );
        assert!(non_registry(&report).is_empty(), "{:?}", report.violations);
        let report = run_passes(&root, BaselineMode::Check, PassFilter::All);
        assert!(non_registry(&report).is_empty(), "{:?}", report.violations);
        let body =
            std::fs::read_to_string(root.join(ALLOC_BASELINE_PATH)).expect("baseline readable"); // lint:allow(expect)
        assert!(body.contains("crates/sim/src/engine.rs::Simulator::run\tvec"));
    }

    #[test]
    fn update_scope_all_writes_every_baseline() {
        let root = synthetic_root("scope-all");
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::All),
            PassFilter::All,
        );
        assert!(non_registry(&report).is_empty(), "{:?}", report.violations);
        for p in [BASELINE_PATH, ALLOC_BASELINE_PATH, CAST_BASELINE_PATH] {
            assert!(root.join(p).exists(), "{p} must be written");
        }
    }

    #[test]
    fn pass_filter_alloc_skips_the_panic_and_registry_passes() {
        // With no baselines at all, a `--pass=alloc` run must complain
        // about the alloc baseline only — the panic pass never ran.
        let root = synthetic_root("pass-alloc");
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Alloc);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains(ALLOC_BASELINE_PATH));
        assert!(!report.violations[0].contains(BASELINE_PATH));
    }

    #[test]
    fn new_hot_path_alloc_site_fails_with_witness_chain() {
        let root = synthetic_root("alloc-new-site");
        // Baseline an empty inventory, then the vec! in Simulator::run is
        // a *new* site and must fail with a witness chain naming the
        // entry point and the sink.
        std::fs::write(root.join(ALLOC_BASELINE_PATH), "# empty\n").expect("write baseline"); // lint:allow(expect)
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Alloc);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert!(
            v.contains("new `vec` allocation site(s) in `Simulator::run`"),
            "{v}"
        );
        assert!(
            v.contains("witness: Simulator::run (crates/sim/src/engine.rs:1)"),
            "{v}"
        );
        assert!(v.contains("vec! @ crates/sim/src/engine.rs:2"), "{v}");
    }

    /// Synthetic root with a truncating and a documented cast in the
    /// sim entry point.
    fn cast_root(name: &str) -> PathBuf {
        let root = workspace_root()
            .join("target")
            .join("analyze-test")
            .join(name);
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("crates/sim/src");
        std::fs::create_dir_all(&src_dir).expect("create synthetic src"); // lint:allow(expect)
        std::fs::create_dir_all(root.join("ci")).expect("create synthetic ci"); // lint:allow(expect)
        std::fs::write(
            src_dir.join("engine.rs"),
            "impl Simulator { pub fn run(&mut self, x: u64) {\n    let a = x as u32;\n    let b = x as u16; // lint:allow(cast) — bound: x < 65536 structurally\n    drop((a, b));\n} }\n",
        )
        .expect("write synthetic engine"); // lint:allow(expect)
        root
    }

    #[test]
    fn cast_pass_ratchets_and_flags_new_sites() {
        let root = cast_root("cast-ratchet");
        // Missing baseline: `--pass=cast` complains about the cast
        // baseline only — the panic and alloc passes never ran.
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Cast);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains(CAST_BASELINE_PATH));
        assert!(!report.violations[0].contains(ALLOC_BASELINE_PATH));
        // Regenerate: the documented u16 site is excluded but counted in
        // the header's allowed count.
        let report = run_passes(
            &root,
            BaselineMode::Update(UpdateScope::Cast),
            PassFilter::Cast,
        );
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let body = std::fs::read_to_string(root.join(CAST_BASELINE_PATH)).expect("baseline"); // lint:allow(expect)
        assert!(
            body.contains("1\tcrates/sim/src/engine.rs::Simulator::run\tu32"),
            "{body}"
        );
        assert!(body.contains("(excluded below): 1"), "{body}");
        assert!(!body.contains("\tu16\n"), "{body}");
        // Clean against the committed baseline.
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Cast);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // A new u64→u16 truncation fails with its source line.
        std::fs::write(
            root.join("crates/sim/src/engine.rs"),
            "impl Simulator { pub fn run(&mut self, x: u64) {\n    let a = x as u32;\n    let c = x as u16;\n    drop((a, c));\n} }\n",
        )
        .expect("rewrite synthetic engine"); // lint:allow(expect)
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Cast);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert!(
            v.contains("new truncating `as u16` site(s) in `Simulator::run`"),
            "{v}"
        );
        assert!(v.contains("crates/sim/src/engine.rs:3"), "{v}");
    }

    /// Synthetic root seeding the three canonical worker hazards: a
    /// captured-`Cell` write, a `Mutex<Vec<_>>` push, and a `ctx.rng`
    /// call that resolves into `SimRng`.
    fn par_root(name: &str) -> PathBuf {
        let root = workspace_root()
            .join("target")
            .join("analyze-test")
            .join(name);
        let _ = std::fs::remove_dir_all(&root);
        let src_dir = root.join("crates/sim/src");
        std::fs::create_dir_all(&src_dir).expect("create synthetic src"); // lint:allow(expect)
        std::fs::write(
            src_dir.join("engine.rs"),
            "impl Simulator {\n    pub fn run(&mut self, ctx: &mut Ctx) {\n        let hits = Cell::new(0u64);\n        let out = Mutex::new(Vec::new());\n        std::thread::scope(|s| {\n            s.spawn(|| hits.set(hits.get() + 1));\n            s.spawn(|| out.lock().unwrap().push(1));\n            s.spawn(move || ctx.rng.below(4));\n        });\n    }\n}\n",
        )
        .expect("write synthetic engine"); // lint:allow(expect)
        std::fs::write(
            src_dir.join("rng.rs"),
            "impl SimRng {\n    pub fn below(&mut self, n: u64) -> u64 { n / 2 }\n}\n",
        )
        .expect("write synthetic rng"); // lint:allow(expect)
        root
    }

    #[test]
    fn par_fixture_hazards_fail_with_witness_chains() {
        let root = par_root("par-fixture");
        let report = run_passes(&root, BaselineMode::Check, PassFilter::Par);
        let v = &report.violations;
        assert_eq!(v.len(), 4, "{v:#?}");
        assert!(
            v[0].contains("`thread::scope` in `Simulator::run` is not declared"),
            "{}",
            v[0]
        );
        assert!(v[0].contains("crates/sim/src/engine.rs:5"), "{}", v[0]);
        // Worker 1: captured Cell write, direct witness.
        assert!(
            v[1].contains("hits `.set(` (cell-write hazard)"),
            "{}",
            v[1]
        );
        assert!(
            v[1].contains("witness: Simulator::run (crates/sim/src/engine.rs:2)"),
            "{}",
            v[1]
        );
        assert!(
            v[1].contains("worker closure [spawned at crates/sim/src/engine.rs:6]"),
            "{}",
            v[1]
        );
        assert!(
            v[1].contains(".set( @ crates/sim/src/engine.rs:6"),
            "{}",
            v[1]
        );
        // Worker 2: Mutex<Vec<_>> push under the lock.
        assert!(v[2].contains("hits `.lock(` (lock hazard)"), "{}", v[2]);
        assert!(
            v[2].contains("worker closure [spawned at crates/sim/src/engine.rs:7]"),
            "{}",
            v[2]
        );
        // Worker 3: ctx.rng reached transitively through SimRng::below.
        assert!(v[3].contains("`SimRng::below` (rng hazard)"), "{}", v[3]);
        assert!(
            v[3].contains("reachable from a worker closure of `Simulator::run`"),
            "{}",
            v[3]
        );
        assert!(
            v[3].contains("-> SimRng::below (crates/sim/src/rng.rs:2)"),
            "{}",
            v[3]
        );
        assert_eq!(report.stats.spawn_sites, 1);
    }

    #[test]
    fn par_manifest_covers_sites_and_detects_drift_both_ways() {
        use crate::boundaries::ParallelRegion;
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { pub fn run(&mut self) { std::thread::scope(|s| { s.spawn(|| work()); }); } }\nfn work() {}\n",
        )]);
        // Covered: a matching manifest entry, hazard-free worker → clean.
        let covered = [ParallelRegion {
            file: "crates/sim/src/engine.rs",
            function: "Simulator::run",
            discipline: "test",
            audited_hazards: &[],
        }];
        let mut report = Report::default();
        par::par_pass(&g, &covered, &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Undeclared drift: a spawn site without a manifest entry.
        let mut report = Report::default();
        par::par_pass(&g, &[], &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(report.violations[0].contains("not declared in"));
        // Stale drift: the manifest names a function that no longer
        // spawns, in a file that *is* in the corpus.
        let stale = [
            covered[0],
            ParallelRegion {
                file: "crates/sim/src/engine.rs",
                function: "work",
                discipline: "test",
                audited_hazards: &[],
            },
        ];
        let mut report = Report::default();
        par::par_pass(&g, &stale, &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(
            report.violations[0].contains("stale PARALLEL_REGIONS entry `work`"),
            "{}",
            report.violations[0]
        );
        // A manifest file absent from the corpus is not stale — fixture
        // roots must not report the real manifest.
        let absent = [ParallelRegion {
            file: "crates/net/src/routing.rs",
            function: "Routing::repair_with_mask",
            discipline: "test",
            audited_hazards: &[],
        }];
        let mut report = Report::default();
        par::par_pass(&g, &absent, &mut report);
        assert!(
            !report.violations.iter().any(|v| v.contains("stale")),
            "{:?}",
            report.violations
        );
    }

    #[test]
    fn audited_hazard_classes_pass_and_unaudited_fail() {
        use crate::boundaries::ParallelRegion;
        // The sweep-runner shape: workers claim via an atomic counter and
        // write through per-slot locks.
        let g = graph_of(&[(
            "crates/sim/src/engine.rs",
            "impl Simulator { pub fn run(&mut self, n: &AtomicUsize, out: &Mutex<Vec<u8>>) { std::thread::scope(|s| { s.spawn(|| { n.fetch_add(1, Ordering::Relaxed); out.lock().unwrap().push(1); }); }); } }\n",
        )]);
        let region = |audited: &'static [&'static str]| ParallelRegion {
            file: "crates/sim/src/engine.rs",
            function: "Simulator::run",
            discipline: "index-slotted merge",
            audited_hazards: audited,
        };
        let mut report = Report::default();
        par::par_pass(&g, &[region(&["atomic", "lock"])], &mut report);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        // Dropping `lock` from the audit list exposes the lock hazard.
        let mut report = Report::default();
        par::par_pass(&g, &[region(&["atomic"])], &mut report);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert!(
            report.violations[0].contains("`.lock(` (lock hazard)"),
            "{}",
            report.violations[0]
        );
    }

    #[test]
    fn workspace_analyze_is_clean() {
        // The real workspace must pass every pass against the
        // checked-in baselines and the committed OBSERVABILITY.md tables.
        let report = run_passes(&workspace_root(), BaselineMode::Check, PassFilter::All);
        assert!(
            report.violations.is_empty(),
            "analyze must be clean on the workspace:\n{}",
            report.violations.join("\n")
        );
        assert!(report.stats.entries > 0, "entry points must be found");
        assert!(report.stats.edges > 0, "call edges must be resolved");
    }

    #[test]
    fn workspace_graph_reaches_the_overlays() {
        // Sanity: the entry heuristics must pull the overlay handlers in,
        // and the graph must reach beyond the engine crate.
        let files = collect_workspace(&workspace_root());
        assert!(files.len() > 50, "workspace walk found {}", files.len());
        let mut fns = Vec::new();
        for f in &files {
            let Ok(src) = std::fs::read_to_string(&f.path) else {
                continue;
            };
            fns.extend(parse_file(&f.label, &lex(&src), f.is_test, f.is_bin));
        }
        let g = Graph::build(fns);
        let names: Vec<String> = g.entries.iter().map(|&i| g.fns[i].qualname()).collect();
        assert!(
            names.iter().any(|n| n == "Simulator::run"),
            "engine loop missing from entries: {names:?}"
        );
        assert!(
            names.iter().any(|n| n == "GnutellaSim::handle"),
            "overlay handler missing from entries: {names:?}"
        );
        let (dist, _) = g.reach();
        let reached_files: std::collections::BTreeSet<&str> = g
            .fns
            .iter()
            .enumerate()
            .filter(|(i, _)| dist[*i] != usize::MAX)
            .map(|(_, f)| f.file.as_str())
            .collect();
        assert!(
            reached_files.iter().any(|f| f.contains("crates/net/")),
            "reachability must cross into the underlay crate"
        );
    }
}
