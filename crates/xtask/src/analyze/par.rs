//! `--pass=par` — parallel-region discipline pass.
//!
//! Checks every thread-spawn site in the workspace against the audited
//! [`crate::boundaries::PARALLEL_REGIONS`] manifest in both directions:
//! a spawn site without a manifest entry fails (undeclared parallelism),
//! and a manifest entry whose function no longer spawns fails as stale
//! (the stale check is gated on the entry's file being present in the
//! scanned corpus, so fixture roots don't report the real manifest).
//!
//! Each region's worker closures are then audited for determinism
//! hazards, both *direct* (hazard markers lexically inside the closure:
//! interior-mutability writes, atomics, locks, channel receives, ambient
//! RNG, unordered float accumulation) and *transitive* (the same markers
//! — plus any `SimRng` method — in functions reachable from the worker's
//! calls, via the same over-approximate resolution as the purity pass).
//! A hazard class listed in the region's `audited_hazards` is accepted:
//! the manifest's merge-discipline text carries the determinism
//! argument. Everything else fails with a witness chain from the
//! enclosing function through the worker closure down to the hazard
//! site, `file:line` per hop.

use crate::analyze::graph::Graph;
use crate::analyze::parser::{HazardKind, SinkKind};
use crate::analyze::Report;
use crate::boundaries::ParallelRegion;

/// Runs the parallel-region discipline pass over the built graph.
pub fn par_pass(g: &Graph, regions: &[ParallelRegion], report: &mut Report) {
    let norm = |file: &str| file.replace('\\', "/");
    let mut region_live = vec![false; regions.len()];

    for (i, f) in g.fns.iter().enumerate() {
        if f.is_test || f.spawns.is_empty() {
            continue;
        }
        let qual = f.qualname();
        let nf = norm(&f.file);
        let region = regions
            .iter()
            .position(|r| nf.ends_with(r.file) && r.function == qual);
        if let Some(ri) = region {
            region_live[ri] = true;
        }
        let audited: &[&str] = region.map(|ri| regions[ri].audited_hazards).unwrap_or(&[]);
        // When the region is declared, violations quote its claimed
        // merge discipline so the reviewer sees what argument the hazard
        // undermines.
        let discipline = region
            .map(|ri| format!(" (declared discipline: {})", regions[ri].discipline))
            .unwrap_or_default();
        report.stats.spawn_sites += f.spawns.len();

        if region.is_none() {
            for sp in &f.spawns {
                report.violations.push(format!(
                    "par: {}:{}: `{}` in `{qual}` is not declared in \
                     xtask::boundaries::PARALLEL_REGIONS — declare the region with its merge \
                     discipline (and audited hazard classes) or remove the spawn",
                    f.file, sp.line, sp.what
                ));
            }
        }

        for (si, sp) in f.spawns.iter().enumerate() {
            for (wi, w) in sp.workers.iter().enumerate() {
                let head = format!(
                    "  witness: {qual} ({}:{})\n    -> worker closure [spawned at {}:{}]\n",
                    f.file, f.line, f.file, w.line
                );

                // Direct hazards lexically inside the closure.
                for h in &w.hazards {
                    if audited.contains(&h.kind.name()) {
                        continue;
                    }
                    report.violations.push(format!(
                        "par: {}:{}: worker closure in `{qual}` hits `{}` ({} hazard) — \
                         workers must not touch scheduling-sensitive shared state; prove the \
                         merge deterministic and audit the class in PARALLEL_REGIONS, or \
                         restructure the region{discipline}\n{head}    -> {} @ {}:{}\n",
                        f.file,
                        h.line,
                        h.what,
                        h.kind.name(),
                        h.what,
                        f.file,
                        h.line
                    ));
                }

                // Transitive hazards: BFS from the worker's resolved calls.
                let Some(edges) = g.worker_edges.get(&(i, si, wi)) else {
                    continue;
                };
                let mut starts: Vec<usize> = edges.iter().map(|&(t, _)| t).collect();
                starts.sort_unstable();
                starts.dedup();
                if starts.is_empty() {
                    continue;
                }
                let (dist, parent) = g.reach_from(&starts);
                for (ti, tf) in g.fns.iter().enumerate() {
                    if tf.is_test || dist[ti] == usize::MAX {
                        continue;
                    }
                    let mut flag = |kind: HazardKind, what: &str, line: usize| {
                        if audited.contains(&kind.name()) {
                            return;
                        }
                        let chain = g.witness(&parent, ti);
                        let tail = g.render_witness(&chain, what, line).replacen(
                            "  witness: ",
                            "    -> ",
                            1,
                        );
                        report.violations.push(format!(
                            "par: {}:{line}: `{what}` ({} hazard) in `{}` is reachable from a \
                             worker closure of `{qual}` — prove it unreachable, or audit the \
                             class in PARALLEL_REGIONS with a determinism \
                             argument{discipline}\n{head}{tail}",
                            tf.file,
                            kind.name(),
                            tf.qualname()
                        ));
                    };
                    // Any SimRng method is the deterministic RNG stream;
                    // touching it from a worker perturbs the stream by
                    // scheduling order.
                    if tf.impl_type.as_deref() == Some("SimRng") {
                        flag(HazardKind::Rng, &tf.qualname(), tf.line);
                    }
                    for s in &tf.sinks {
                        if s.kind == SinkKind::Entropy {
                            flag(HazardKind::Rng, &s.what, s.line);
                        }
                    }
                    for h in &tf.hazards {
                        flag(h.kind, &h.what, h.line);
                    }
                }
            }
        }
    }

    // Stale manifest entries: the file is in the scanned corpus but no
    // spawn site matched (function renamed, spawns removed, or the file
    // went serial).
    for (ri, r) in regions.iter().enumerate() {
        if region_live[ri] {
            continue;
        }
        if !g.fns.iter().any(|f| norm(&f.file).ends_with(r.file)) {
            continue;
        }
        report.violations.push(format!(
            "par: stale PARALLEL_REGIONS entry `{}` in {} — no thread-spawn site found in that \
             function; update or remove the manifest entry",
            r.function, r.file
        ));
    }
}
