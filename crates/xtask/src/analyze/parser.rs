//! Item extraction: `fn` items, impl blocks, and per-body sites.
//!
//! Consumes the token stream from [`crate::analyze::lexer`] and produces
//! one [`FnItem`] per function definition, carrying everything the
//! analysis passes need: outgoing call sites (for the call graph),
//! determinism sink tokens (purity pass), panic sites (panic-reachability
//! pass), and trace/metrics emission sites with their literal arguments
//! (registry drift pass).
//!
//! The parser is deliberately approximate where Rust's grammar is
//! irrelevant to the analyses — bodies of nested `fn` items are
//! attributed to the enclosing function, turbofish-qualified calls are
//! ignored, and `#[cfg(test)]` regions are tracked by brace matching.
//! Every approximation widens (never narrows) what the passes see.

use crate::analyze::lexer::{Lexed, Tok, TokKind};
use crate::boundaries::{in_threads_boundary, in_wallclock_boundary, ALLOC_RULE, CAST_RULE};

/// How a call site names its callee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Callee {
    /// `foo(...)` — a free function call.
    Free(String),
    /// `.foo(...)` — a method call on some receiver.
    Method(String),
    /// `Qual::foo(...)` — a path-qualified call; `.0` is the segment
    /// directly before the name (type, module, or `Self`).
    Qualified(String, String),
    /// `foo!(...)` / `foo![...]` / `foo!{...}` — a macro invocation.
    /// Macros have no workspace `fn` target, but the allocation pass
    /// needs `vec!` / `format!` sites and the panic pass needs
    /// `panic!`-family sites recorded like any other call.
    Macro(String),
}

/// One outgoing call site inside a function body.
#[derive(Clone, Debug)]
pub struct Call {
    /// The callee reference.
    pub callee: Callee,
    /// 1-based line of the call.
    pub line: usize,
}

/// Classes of determinism sink the purity pass proves unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SinkKind {
    /// Wall-clock reads: `Instant::now`, `SystemTime`.
    Wallclock,
    /// Ambient entropy: `thread_rng`, `rand::random`.
    Entropy,
    /// Thread spawning: `thread::spawn`, `thread::scope`.
    Thread,
}

impl SinkKind {
    /// The lint rule name whose `lint:allow` escape covers this sink.
    pub fn rule(self) -> &'static str {
        match self {
            SinkKind::Wallclock | SinkKind::Entropy => "wallclock",
            SinkKind::Thread => "threads",
        }
    }
}

/// One determinism sink token inside a function body.
#[derive(Clone, Debug)]
pub struct SinkSite {
    /// Which sink class the token belongs to.
    pub kind: SinkKind,
    /// The matched token text (`"Instant::now"`, `"thread::scope"`, …).
    pub what: String,
    /// 1-based line of the token.
    pub line: usize,
    /// True when the site is covered by a `lint:allow` honored inside
    /// the audited boundary file it sits in (see [`crate::boundaries`]).
    pub audited: bool,
}

/// Classes of panic site the panic-reachability pass inventories.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PanicKind {
    /// `.unwrap()` / `.unwrap_err()`.
    Unwrap,
    /// `.expect(` / `.expect_err(`.
    Expect,
    /// `panic!` / `unreachable!` / `todo!` / `unimplemented!`.
    PanicMacro,
    /// `x[i]` indexing / slicing expressions.
    Index,
}

impl PanicKind {
    /// Stable name used in the baseline file.
    pub fn name(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic",
            PanicKind::Index => "index",
        }
    }

    /// The `lint:allow` name that marks a site of this kind documented.
    fn allow_name(self) -> &'static str {
        match self {
            PanicKind::Unwrap => "unwrap",
            PanicKind::Expect => "expect",
            PanicKind::PanicMacro => "panic",
            PanicKind::Index => "index",
        }
    }
}

/// One potential-panic site inside a function body.
#[derive(Clone, Debug)]
pub struct PanicSite {
    /// Which panic class the site belongs to.
    pub kind: PanicKind,
    /// 1-based line of the site.
    pub line: usize,
    /// True when a `lint:allow(<kind>)` comment documents the invariant
    /// on the site's line or the line directly above.
    pub documented: bool,
}

/// Classes of allocation sink the allocation-discipline pass
/// inventories (see `docs/STATIC_ANALYSIS.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum AllocKind {
    /// `vec![…]` / `Vec::new` / `VecDeque::new` / `*::with_capacity`
    /// inside a loop body — a fresh buffer per iteration.
    VecLoop,
    /// The same constructions outside a loop — a fresh buffer per call,
    /// which on a per-event hot path is just as costly.
    Vec,
    /// `Box::new` — a heap node per call.
    BoxAlloc,
    /// `.clone()` / `.to_vec()` — duplicating owned data.
    Clone,
    /// `.collect()` — materializing an iterator into a container.
    Collect,
    /// `format!` / `String::from` / `.to_string()` — string building.
    Str,
    /// Fresh `BTreeMap` / `BTreeSet` / `DetMap` construction.
    Map,
}

impl AllocKind {
    /// Stable name used in the alloc baseline file.
    pub fn name(self) -> &'static str {
        match self {
            AllocKind::VecLoop => "vec-loop",
            AllocKind::Vec => "vec",
            AllocKind::BoxAlloc => "box",
            AllocKind::Clone => "clone",
            AllocKind::Collect => "collect",
            AllocKind::Str => "string",
            AllocKind::Map => "map",
        }
    }
}

/// One allocation sink inside a function body.
#[derive(Clone, Debug)]
pub struct AllocSite {
    /// Which allocation class the site belongs to.
    pub kind: AllocKind,
    /// The matched construct (`"vec!"`, `".collect()"`, `"Box::new"`, …).
    pub what: String,
    /// 1-based line of the site.
    pub line: usize,
}

/// Integer target types an `as` cast can silently truncate into. 64-bit
/// targets (`u64`, `i64`, `usize`, `isize`) are excluded: they are
/// widening from every narrower source, and source types are invisible
/// to a token-level scan. Casting *to* one of these — `u64→u32` packing,
/// `usize→u32` indices, `f64→u32` rate math — is exactly the class that
/// turns into silent corruption at 1M-host scale.
pub const NARROW_INT_TARGETS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

/// One potentially-truncating `as` cast inside a function body.
#[derive(Clone, Debug)]
pub struct CastSite {
    /// The narrow target type (`"u32"`, `"u16"`, …).
    pub target: String,
    /// 1-based line of the `as` keyword.
    pub line: usize,
    /// True when a `lint:allow(cast)` comment documents the bound on the
    /// site's line or the line directly above (see
    /// [`crate::boundaries::CAST_RULE`]).
    pub documented: bool,
}

/// Classes of worker-side determinism hazard the parallel-region pass
/// inventories (see `docs/STATIC_ANALYSIS.md`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HazardKind {
    /// Interior-mutability writes: `.set(` / `.borrow_mut(` /
    /// `static mut` — a worker mutating captured shared state races or
    /// depends on worker interleaving.
    CellWrite,
    /// Atomic read-modify-write: `.fetch_add(` and friends — the
    /// observed sequence depends on scheduling.
    Atomic,
    /// Lock acquisition: `.lock(` / `.try_lock(` — lock grant order is
    /// scheduler-dependent (shared `Vec` pushes under a lock merge in
    /// nondeterministic order).
    Lock,
    /// Channel receives: `.recv(` family — arrival order across workers
    /// is scheduler-dependent.
    Channel,
    /// RNG use: ambient entropy or a reachable `SimRng` method — worker
    /// interleaving would perturb the deterministic stream.
    Rng,
    /// Unordered float accumulation (`.sum::<f64>()` across
    /// worker-merged data) — float addition is not associative.
    FloatAccum,
}

impl HazardKind {
    /// Stable name, matched against
    /// [`crate::boundaries::ParallelRegion::audited_hazards`].
    pub fn name(self) -> &'static str {
        match self {
            HazardKind::CellWrite => "cell-write",
            HazardKind::Atomic => "atomic",
            HazardKind::Lock => "lock",
            HazardKind::Channel => "channel",
            HazardKind::Rng => "rng",
            HazardKind::FloatAccum => "float-accum",
        }
    }
}

/// One determinism-hazard site (inside a worker closure, or anywhere in
/// a function body for the reachability side of the parallel pass).
#[derive(Clone, Debug)]
pub struct HazardSite {
    /// Which hazard class the site belongs to.
    pub kind: HazardKind,
    /// The matched construct (`".set("`, `"static mut"`, …).
    pub what: String,
    /// 1-based line of the site.
    pub line: usize,
}

/// Recognizes a method name as an interior-mutability / merge-order
/// hazard. Deliberately conservative: names that collide with common
/// pure APIs in this workspace (`store` = the DHT store RPC, `replace` /
/// `swap` / `take` = std value shuffling) are left to the closure-level
/// heuristics rather than poisoning whole-function scans.
pub fn hazard_of_method(name: &str) -> Option<HazardKind> {
    match name {
        "set" | "borrow_mut" => Some(HazardKind::CellWrite),
        "fetch_add"
        | "fetch_sub"
        | "fetch_or"
        | "fetch_and"
        | "fetch_xor"
        | "compare_exchange"
        | "compare_exchange_weak" => Some(HazardKind::Atomic),
        "lock" | "try_lock" => Some(HazardKind::Lock),
        "recv" | "try_recv" | "recv_timeout" => Some(HazardKind::Channel),
        _ => None,
    }
}

/// One worker closure spawned inside a parallel region: the closure
/// argument of `s.spawn(...)` (or of a bare `thread::spawn(...)`).
#[derive(Clone, Debug)]
pub struct WorkerClosure {
    /// 1-based line of the `spawn` call.
    pub line: usize,
    /// Calls made lexically inside the closure (nested closures
    /// included) — the roots of the worker-reachability BFS.
    pub calls: Vec<Call>,
    /// Direct hazard sites inside the closure.
    pub hazards: Vec<HazardSite>,
}

/// One thread-spawn region inside a function body.
#[derive(Clone, Debug)]
pub struct SpawnSite {
    /// The spawner (`"thread::scope"`, `"crossbeam::thread::scope"`,
    /// `"thread::spawn"`).
    pub what: String,
    /// 1-based line of the spawn construct.
    pub line: usize,
    /// The worker closures spawned within the region.
    pub workers: Vec<WorkerClosure>,
}

/// One trace event emission site (`Tracer::emit` / `Ctx::trace` shapes).
#[derive(Clone, Debug)]
pub struct TraceEmit {
    /// Component literal, `None` when passed as a variable (forwarders).
    pub component: Option<String>,
    /// Kind literal, `None` when dynamic.
    pub kind: Option<String>,
    /// Level name (`"info"`, …) when written as `TraceLevel::X`.
    pub level: Option<String>,
    /// 1-based line of the call.
    pub line: usize,
}

/// Which `Metrics` API a key was written through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricApi {
    /// `incr` / `set_counter`.
    Counter,
    /// `record`.
    Histogram,
    /// `trace` (time series).
    Series,
}

impl MetricApi {
    /// Stable name matching `registry::MetricKind::name`.
    pub fn name(self) -> &'static str {
        match self {
            MetricApi::Counter => "counter",
            MetricApi::Histogram => "histogram",
            MetricApi::Series => "series",
        }
    }
}

/// One metrics key emission site. Keys built with `format!` carry a
/// trailing-`*` pattern (each `{…}` segment replaced by `*`).
#[derive(Clone, Debug)]
pub struct MetricEmit {
    /// The literal key or `*`-pattern.
    pub key: String,
    /// Which API wrote it.
    pub api: MetricApi,
    /// 1-based line of the call.
    pub line: usize,
}

/// One parsed function definition with everything the passes need.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Simple name (`"handle"`).
    pub name: String,
    /// Enclosing impl type (`Some("GnutellaSim")`) or `None` for free fns.
    pub impl_type: Option<String>,
    /// Trait being implemented, when the impl is a trait impl.
    pub trait_name: Option<String>,
    /// Workspace-relative file label.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// True when defined under `#[cfg(test)]` or in a `tests/` file.
    pub is_test: bool,
    /// True when defined in binary (`main.rs` / `src/bin/`) code.
    pub is_bin: bool,
    /// True when the `fn` declaration carries a `lint:allow(alloc)`
    /// escape (audited setup / one-shot path — see
    /// [`crate::boundaries::ALLOC_RULE`]): the whole body is exempt from
    /// the allocation-discipline inventory.
    pub alloc_exempt: bool,
    /// Outgoing call sites.
    pub calls: Vec<Call>,
    /// Determinism sink tokens in the body.
    pub sinks: Vec<SinkSite>,
    /// Allocation sinks in the body.
    pub allocs: Vec<AllocSite>,
    /// Potential-panic sites in the body.
    pub panics: Vec<PanicSite>,
    /// Trace event emissions in the body.
    pub trace_emits: Vec<TraceEmit>,
    /// Metrics key emissions in the body.
    pub metric_emits: Vec<MetricEmit>,
    /// Potentially-truncating `as` casts in the body.
    pub casts: Vec<CastSite>,
    /// Determinism-hazard markers anywhere in the body (used by the
    /// parallel pass for functions *reachable from* worker closures).
    pub hazards: Vec<HazardSite>,
    /// Thread-spawn regions in the body.
    pub spawns: Vec<SpawnSite>,
}

impl FnItem {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qualname(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// Keywords that look like `ident (` but are not calls.
const NON_CALL_KEYWORDS: [&str; 12] = [
    "if", "while", "for", "match", "return", "loop", "fn", "move", "in", "let", "else", "unsafe",
];

/// Parses one lexed file into its function items.
///
/// `file` is the workspace-relative label (used for boundary membership
/// and diagnostics); `file_is_test` marks whole-file test code
/// (`tests/` integration dirs); `file_is_bin` marks binary crate code.
pub fn parse_file(file: &str, lexed: &Lexed, file_is_test: bool, file_is_bin: bool) -> Vec<FnItem> {
    let toks = &lexed.toks;
    let mut out = Vec::new();

    // Impl context stack: (type name, trait name, brace depth of body).
    let mut impls: Vec<(Option<String>, Option<String>, usize)> = Vec::new();
    // Brace depths at which #[cfg(test)] regions opened.
    let mut test_regions: Vec<usize> = Vec::new();
    let mut depth = 0usize;
    let mut pending_cfg_test = false;
    let mut pending_impl: Option<(Option<String>, Option<String>)> = None;

    let mut i = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        match t.kind {
            TokKind::Punct if t.text == "{" => {
                depth += 1;
                if pending_cfg_test {
                    test_regions.push(depth);
                    pending_cfg_test = false;
                }
                if let Some((ty, tr)) = pending_impl.take() {
                    impls.push((ty, tr, depth));
                }
                i += 1;
            }
            TokKind::Punct if t.text == "}" => {
                if test_regions.last() == Some(&depth) {
                    test_regions.pop();
                }
                if impls.last().is_some_and(|(_, _, d)| *d == depth) {
                    impls.pop();
                }
                depth = depth.saturating_sub(1);
                i += 1;
            }
            TokKind::Punct if t.text == ";" => {
                // `#[cfg(test)] use …;` — the attribute never reached a
                // brace, so it scoped a single braceless item.
                pending_cfg_test = false;
                i += 1;
            }
            TokKind::Punct if t.text == "#" => {
                // Attribute: `#[ ... ]`. Detect cfg(test) anywhere inside.
                if toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
                    let mut j = i + 2;
                    let mut bd = 1usize;
                    let mut saw_cfg = false;
                    let mut saw_test = false;
                    while j < toks.len() && bd > 0 {
                        let tj = &toks[j];
                        if tj.is_punct('[') {
                            bd += 1;
                        } else if tj.is_punct(']') {
                            bd -= 1;
                        } else if tj.is_ident("cfg") {
                            saw_cfg = true;
                        } else if tj.is_ident("test") {
                            saw_test = true;
                        }
                        j += 1;
                    }
                    if saw_cfg && saw_test {
                        pending_cfg_test = true;
                    }
                    i = j;
                } else {
                    i += 1;
                }
            }
            TokKind::Ident if t.text == "impl" => {
                let (ctx, next) = parse_impl_header(toks, i + 1);
                pending_impl = Some(ctx);
                i = next; // positioned at the body '{' (or wherever parsing stopped)
            }
            TokKind::Ident if t.text == "fn" => {
                let Some(name_tok) = toks.get(i + 1) else {
                    break;
                };
                if name_tok.kind != TokKind::Ident {
                    i += 1;
                    continue;
                }
                let decl_line = t.line;
                // Scan the signature for the body '{' or a ';' (no body).
                let mut j = i + 2;
                let mut pd = 0usize; // () and [] nesting
                let mut body_start = None;
                while j < toks.len() {
                    let tj = &toks[j];
                    if tj.is_punct('(') || tj.is_punct('[') {
                        pd += 1;
                    } else if tj.is_punct(')') || tj.is_punct(']') {
                        pd = pd.saturating_sub(1);
                    } else if pd == 0 && tj.is_punct('{') {
                        body_start = Some(j);
                        break;
                    } else if pd == 0 && tj.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                let Some(open) = body_start else {
                    i = j + 1;
                    continue;
                };
                // Find the matching close brace.
                let mut bd = 1usize;
                let mut k = open + 1;
                while k < toks.len() && bd > 0 {
                    if toks[k].is_punct('{') {
                        bd += 1;
                    } else if toks[k].is_punct('}') {
                        bd -= 1;
                    }
                    k += 1;
                }
                let body_end = k - 1; // index of the closing '}'
                let in_test = file_is_test || !test_regions.is_empty();
                let (impl_type, trait_name) = match impls.last() {
                    Some((ty, tr, _)) => (ty.clone(), tr.clone()),
                    None => (None, None),
                };
                let mut item = FnItem {
                    name: name_tok.text.clone(),
                    impl_type,
                    trait_name,
                    file: file.to_string(),
                    line: decl_line,
                    is_test: in_test,
                    is_bin: file_is_bin,
                    alloc_exempt: lexed.allowed(decl_line, ALLOC_RULE),
                    calls: Vec::new(),
                    sinks: Vec::new(),
                    allocs: Vec::new(),
                    panics: Vec::new(),
                    trace_emits: Vec::new(),
                    metric_emits: Vec::new(),
                    casts: Vec::new(),
                    hazards: Vec::new(),
                    spawns: Vec::new(),
                };
                scan_body(file, lexed, open + 1, body_end, &mut item);
                scan_spawns(file, lexed, open + 1, body_end, &mut item);
                out.push(item);
                i = body_end + 1;
                // The body braces were consumed without going through the
                // depth tracker, so `depth` is unchanged — correct, since
                // we resumed after the matching close.
            }
            _ => i += 1,
        }
    }
    out
}

/// Parses an impl header starting right after the `impl` keyword.
/// Returns `((type, trait), index_of_body_brace)`.
fn parse_impl_header(toks: &[Tok], mut i: usize) -> ((Option<String>, Option<String>), usize) {
    // Skip a leading generics list `impl<...>`.
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_angles(toks, i);
    }
    let mut pre_for: Vec<String> = Vec::new(); // path idents at angle depth 0
    let mut post_for: Vec<String> = Vec::new();
    let mut after_for = false;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('{') {
            break;
        }
        if t.is_punct('<') {
            i = skip_angles(toks, i);
            continue;
        }
        if t.is_ident("for") {
            after_for = true;
        } else if t.is_ident("where") {
            // Anything after `where` is bounds, not the subject path.
            while i < toks.len() && !toks[i].is_punct('{') {
                i += 1;
            }
            break;
        } else if t.kind == TokKind::Ident && !t.is_ident("dyn") && !t.is_ident("mut") {
            if after_for {
                post_for.push(t.text.clone());
            } else {
                pre_for.push(t.text.clone());
            }
        }
        i += 1;
    }
    let ctx = if after_for {
        (post_for.last().cloned(), pre_for.last().cloned())
    } else {
        (pre_for.last().cloned(), None)
    };
    (ctx, i)
}

/// Skips a balanced `<...>` group starting at the `<` at `i`; returns the
/// index just past the matching `>`. A `>` preceded by `-` (the `->`
/// arrow) does not close the group.
fn skip_angles(toks: &[Tok], mut i: usize) -> usize {
    let mut ad = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            ad += 1;
        } else if t.is_punct('>') && !(i > 0 && toks[i - 1].is_punct('-')) {
            ad = ad.saturating_sub(1);
            if ad == 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Scans a function body (token range `[start, end)`) for call sites,
/// sinks, allocation sites, panic sites, and emission sites.
///
/// Loop bodies are tracked by brace depth so `Vec`-family construction
/// can be classified per-iteration vs per-call: a `for` / `while` /
/// `loop` keyword arms the *next* `{` as a loop-body open. A brace-
/// bearing expression between the keyword and the body (a closure in
/// the iterator chain) steals the armed flag — the approximation is
/// acceptable because such a closure runs once per iteration anyway.
fn scan_body(file: &str, lexed: &Lexed, start: usize, end: usize, item: &mut FnItem) {
    let toks = &lexed.toks;
    let mut j = start;
    let mut depth = 0usize;
    let mut loop_depths: Vec<usize> = Vec::new();
    let mut pending_loop = false;
    while j < end {
        let t = &toks[j];

        if t.is_punct('{') {
            depth += 1;
            if pending_loop {
                loop_depths.push(depth);
                pending_loop = false;
            }
            j += 1;
            continue;
        }
        if t.is_punct('}') {
            if loop_depths.last() == Some(&depth) {
                loop_depths.pop();
            }
            depth = depth.saturating_sub(1);
            j += 1;
            continue;
        }
        let in_loop = !loop_depths.is_empty();

        // Indexing / slicing: `[` directly after an ident, `)` or `]`.
        if t.is_punct('[') && j > start {
            let prev = &toks[j - 1];
            if prev.kind == TokKind::Ident && !NON_CALL_KEYWORDS.contains(&prev.text.as_str())
                || prev.is_punct(')')
                || prev.is_punct(']')
            {
                item.panics.push(PanicSite {
                    kind: PanicKind::Index,
                    line: t.line,
                    documented: lexed.allowed(t.line, PanicKind::Index.allow_name()),
                });
            }
            j += 1;
            continue;
        }

        if t.kind != TokKind::Ident {
            j += 1;
            continue;
        }

        if matches!(t.text.as_str(), "for" | "while" | "loop") {
            pending_loop = true;
            j += 1;
            continue;
        }

        // Truncating casts: `as` followed by a narrow integer type.
        if t.text == "as" {
            if let Some(n) = toks.get(j + 1) {
                if n.kind == TokKind::Ident && NARROW_INT_TARGETS.contains(&n.text.as_str()) {
                    item.casts.push(CastSite {
                        target: n.text.clone(),
                        line: t.line,
                        documented: lexed.allowed(t.line, CAST_RULE),
                    });
                }
            }
            j += 1;
            continue;
        }

        // `static mut` — interior mutability by definition.
        if t.text == "static" && toks.get(j + 1).is_some_and(|n| n.is_ident("mut")) {
            item.hazards.push(HazardSite {
                kind: HazardKind::CellWrite,
                what: "static mut".into(),
                line: t.line,
            });
            j += 2;
            continue;
        }

        // Determinism sinks.
        if let Some(sink) = sink_at(toks, j) {
            let audited = lexed.allowed(t.line, sink.0.rule())
                && match sink.0 {
                    SinkKind::Wallclock | SinkKind::Entropy => in_wallclock_boundary(file),
                    SinkKind::Thread => in_threads_boundary(file),
                };
            item.sinks.push(SinkSite {
                kind: sink.0,
                what: sink.1,
                line: t.line,
                audited,
            });
        }

        // Macro invocations: `name !` followed by a delimiter. Recorded
        // as call sites so the passes see them (the `!=` operator never
        // matches: its `!` is followed by `=`, not a delimiter).
        if toks.get(j + 1).is_some_and(|n| n.is_punct('!'))
            && toks
                .get(j + 2)
                .is_some_and(|d| d.is_punct('(') || d.is_punct('[') || d.is_punct('{'))
        {
            if matches!(
                t.text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            ) {
                item.panics.push(PanicSite {
                    kind: PanicKind::PanicMacro,
                    line: t.line,
                    documented: lexed.allowed(t.line, PanicKind::PanicMacro.allow_name()),
                });
            }
            match t.text.as_str() {
                "vec" => item.allocs.push(AllocSite {
                    kind: if in_loop {
                        AllocKind::VecLoop
                    } else {
                        AllocKind::Vec
                    },
                    what: "vec!".into(),
                    line: t.line,
                }),
                "format" => item.allocs.push(AllocSite {
                    kind: AllocKind::Str,
                    what: "format!".into(),
                    line: t.line,
                }),
                _ => {}
            }
            item.calls.push(Call {
                callee: Callee::Macro(t.text.clone()),
                line: t.line,
            });
            // Skip the `!`; the delimiter is handled next iteration so
            // the depth tracker (and the macro's argument tokens) still
            // see it.
            j += 2;
            continue;
        }

        // Calls: `ident (`, optionally with a turbofish between the
        // name and the argument list: `ident ::<…> (`. Without the
        // turbofish skip, `.collect::<Vec<_>>()` never matched `ident (`
        // and collect-allocation sites written that way were invisible.
        let direct_call = toks.get(j + 1).is_some_and(|n| n.is_punct('('));
        let turbofish_call = !direct_call
            && after_turbofish(toks, j)
                .is_some_and(|k| toks.get(k).is_some_and(|n| n.is_punct('(')));
        if (direct_call || turbofish_call) && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
            let callee = classify_callee(toks, j);

            // Panic-method sites ride on method calls.
            if matches!(callee, Callee::Method(_)) {
                let pk = match t.text.as_str() {
                    "unwrap" | "unwrap_err" => Some(PanicKind::Unwrap),
                    "expect" | "expect_err" => Some(PanicKind::Expect),
                    _ => None,
                };
                if let Some(pk) = pk {
                    item.panics.push(PanicSite {
                        kind: pk,
                        line: t.line,
                        documented: lexed.allowed(t.line, pk.allow_name()),
                    });
                }
                if let Some(kind) = hazard_of_method(&t.text) {
                    item.hazards.push(HazardSite {
                        kind,
                        what: format!(".{}(", t.text),
                        line: t.line,
                    });
                }
            }

            if let Some((kind, what)) = alloc_of(&callee, in_loop) {
                item.allocs.push(AllocSite {
                    kind,
                    what,
                    line: t.line,
                });
            }

            // Emission sites (trace events and metrics keys).
            if matches!(callee, Callee::Method(_) | Callee::Qualified(..)) {
                scan_emission(lexed, j, t.line, &t.text, item);
            }

            item.calls.push(Call {
                callee,
                line: t.line,
            });
        }
        j += 1;
    }
}

/// Scans a function body (token range `[start, end)`) for thread-spawn
/// regions and their worker closures.
///
/// A region is `thread::scope(...)` / `crossbeam::thread::scope(...)`
/// (workers = the closure arguments of `.spawn(` calls inside the
/// region) or a bare `thread::spawn(...)` (worker = the whole argument
/// list). Each worker range is re-scanned with [`scan_body`], so workers
/// get exactly the same call / hazard / sink extraction as whole
/// functions — including calls made from closures nested inside the
/// worker and captures dereferenced through method-call chains.
fn scan_spawns(file: &str, lexed: &Lexed, start: usize, end: usize, item: &mut FnItem) {
    let toks = &lexed.toks;
    let mut j = start;
    while j < end {
        let t = &toks[j];
        if !(t.kind == TokKind::Ident && t.text == "thread") {
            j += 1;
            continue;
        }
        let path_next = |k: usize, name: &str| {
            toks.get(k).is_some_and(|a| a.is_punct(':'))
                && toks.get(k + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(k + 2).is_some_and(|a| a.is_ident(name))
        };
        let Some(target) = ["scope", "spawn"].into_iter().find(|n| path_next(j + 1, n)) else {
            j += 1;
            continue;
        };
        let crossbeam = j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].is_ident("crossbeam");
        let what = if crossbeam {
            format!("crossbeam::thread::{target}")
        } else {
            format!("thread::{target}")
        };
        let open = j + 4; // after `thread : : <target>`
        if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
            j += 4;
            continue;
        }
        let close = match_paren(toks, open, end);
        let mut workers = Vec::new();
        if target == "spawn" {
            workers.push(scan_worker(file, lexed, open + 1, close, t.line));
        } else {
            // Every `.spawn(` method call inside the scope region.
            let mut k = open + 1;
            while k < close {
                if toks[k].is_ident("spawn")
                    && toks[k - 1].is_punct('.')
                    && toks.get(k + 1).is_some_and(|n| n.is_punct('('))
                {
                    let wclose = match_paren(toks, k + 1, close);
                    workers.push(scan_worker(file, lexed, k + 2, wclose, toks[k].line));
                    k = wclose;
                    continue;
                }
                k += 1;
            }
        }
        item.spawns.push(SpawnSite {
            what,
            line: t.line,
            workers,
        });
        // Keep scanning inside the region so nested spawn regions are
        // recorded as their own sites.
        j = open + 1;
    }
}

/// Extracts one worker closure from the spawn call's argument range:
/// runs [`scan_body`] on the range for calls and method-marker hazards,
/// then folds in the hazard classes only visible at closure level —
/// ambient entropy sinks (→ `rng`) and unordered float accumulation
/// (`.sum::<f64>()` → `float-accum`).
fn scan_worker(file: &str, lexed: &Lexed, start: usize, end: usize, line: usize) -> WorkerClosure {
    let mut scratch = FnItem {
        name: String::new(),
        impl_type: None,
        trait_name: None,
        file: file.to_string(),
        line,
        is_test: false,
        is_bin: false,
        alloc_exempt: false,
        calls: Vec::new(),
        sinks: Vec::new(),
        allocs: Vec::new(),
        panics: Vec::new(),
        trace_emits: Vec::new(),
        metric_emits: Vec::new(),
        casts: Vec::new(),
        hazards: Vec::new(),
        spawns: Vec::new(),
    };
    scan_body(file, lexed, start, end, &mut scratch);
    let mut hazards = scratch.hazards;
    for s in &scratch.sinks {
        if s.kind == SinkKind::Entropy {
            hazards.push(HazardSite {
                kind: HazardKind::Rng,
                what: s.what.clone(),
                line: s.line,
            });
        }
    }
    let toks = &lexed.toks;
    let mut k = start;
    while k < end {
        let t = &toks[k];
        if t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "sum" | "product")
            && toks[k - 1].is_punct('.')
        {
            if let Some(after) = after_turbofish(toks, k) {
                if toks[k..after.min(end)]
                    .iter()
                    .any(|g| g.is_ident("f64") || g.is_ident("f32"))
                {
                    hazards.push(HazardSite {
                        kind: HazardKind::FloatAccum,
                        what: format!(".{}::<float>()", t.text),
                        line: t.line,
                    });
                }
            }
        }
        k += 1;
    }
    hazards.sort_by_key(|h| (h.line, h.kind));
    WorkerClosure {
        line,
        calls: scratch.calls,
        hazards,
    }
}

/// Index of the `)` matching the `(` at `open`, bounded by `end` (which
/// is returned when the range ends unbalanced).
fn match_paren(toks: &[Tok], open: usize, end: usize) -> usize {
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < end {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        k += 1;
    }
    end
}

/// Recognizes an allocation sink in a (non-macro) call site.
fn alloc_of(callee: &Callee, in_loop: bool) -> Option<(AllocKind, String)> {
    let vec_kind = || {
        if in_loop {
            AllocKind::VecLoop
        } else {
            AllocKind::Vec
        }
    };
    match callee {
        Callee::Method(name) => match name.as_str() {
            "clone" => Some((AllocKind::Clone, ".clone()".into())),
            "to_vec" => Some((AllocKind::Clone, ".to_vec()".into())),
            "to_string" => Some((AllocKind::Str, ".to_string()".into())),
            "collect" => Some((AllocKind::Collect, ".collect()".into())),
            _ => None,
        },
        Callee::Qualified(qual, name) => match (qual.as_str(), name.as_str()) {
            ("Box", "new") => Some((AllocKind::BoxAlloc, "Box::new".into())),
            ("String", "from") => Some((AllocKind::Str, "String::from".into())),
            ("Vec" | "VecDeque", "new") => Some((vec_kind(), format!("{qual}::new"))),
            (_, "with_capacity") => Some((vec_kind(), format!("{qual}::with_capacity"))),
            ("BTreeMap" | "BTreeSet" | "DetMap", "new") => {
                Some((AllocKind::Map, format!("{qual}::new")))
            }
            _ => None,
        },
        Callee::Free(_) | Callee::Macro(_) => None,
    }
}

/// Recognizes a determinism sink token sequence starting at `j`.
fn sink_at(toks: &[Tok], j: usize) -> Option<(SinkKind, String)> {
    let t = &toks[j];
    let path_next = |k: usize, name: &str| {
        toks.get(k).is_some_and(|a| a.is_punct(':'))
            && toks.get(k + 1).is_some_and(|a| a.is_punct(':'))
            && toks.get(k + 2).is_some_and(|a| a.is_ident(name))
    };
    match t.text.as_str() {
        "Instant" if path_next(j + 1, "now") => Some((SinkKind::Wallclock, "Instant::now".into())),
        "SystemTime" => Some((SinkKind::Wallclock, "SystemTime".into())),
        "thread_rng" => Some((SinkKind::Entropy, "thread_rng".into())),
        "random"
            if j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].is_ident("rand") =>
        {
            Some((SinkKind::Entropy, "rand::random".into()))
        }
        "thread" => {
            for target in ["spawn", "scope"] {
                if path_next(j + 1, target) {
                    return Some((SinkKind::Thread, format!("thread::{target}")));
                }
            }
            None
        }
        _ => None,
    }
}

/// Index of the first token after a turbofish attached to the ident at
/// `j` (`ident :: < … >` with balanced angle brackets), or `None` when
/// there is no turbofish there.
fn after_turbofish(toks: &[Tok], j: usize) -> Option<usize> {
    if !(toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 3).is_some_and(|t| t.is_punct('<')))
    {
        return None;
    }
    let mut depth = 1usize;
    let mut k = j + 4;
    while k < toks.len() && depth > 0 {
        if toks[k].is_punct('<') {
            depth += 1;
        } else if toks[k].is_punct('>') {
            depth -= 1;
        }
        k += 1;
    }
    (depth == 0).then_some(k)
}

/// Classifies the callee of the `ident (` call at `j`.
fn classify_callee(toks: &[Tok], j: usize) -> Callee {
    let name = toks[j].text.clone();
    if j > 0 && toks[j - 1].is_punct('.') {
        return Callee::Method(name);
    }
    if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].is_punct(':') {
        let mut q = j.checked_sub(3);
        // Walk back over a turbofish on the path segment so
        // `Vec::<u8>::new(…)` still resolves its qualifier: from the
        // closing `>` find the matching `<`, then require `ident ::`
        // right before it.
        if let Some(mut k) = q {
            if toks[k].is_punct('>') {
                let mut depth = 1usize;
                while depth > 0 && k > 0 {
                    k -= 1;
                    if toks[k].is_punct('>') {
                        depth += 1;
                    } else if toks[k].is_punct('<') {
                        depth -= 1;
                    }
                }
                q = (depth == 0
                    && k >= 3
                    && toks[k - 1].is_punct(':')
                    && toks[k - 2].is_punct(':')
                    && toks[k - 3].kind == TokKind::Ident)
                    .then(|| k - 3);
            }
        }
        if let Some(qi) = q {
            if toks[qi].kind == TokKind::Ident {
                return Callee::Qualified(toks[qi].text.clone(), name);
            }
        }
        return Callee::Free(name);
    }
    Callee::Free(name)
}

/// Parses the argument list of an emission-API call and records trace /
/// metric emissions. `j` is the index of the method-name ident; the next
/// token is the opening `(`.
fn scan_emission(lexed: &Lexed, j: usize, line: usize, method: &str, item: &mut FnItem) {
    if !matches!(method, "emit" | "trace" | "incr" | "record" | "set_counter") {
        return;
    }
    let toks = &lexed.toks;
    let args = split_args(toks, j + 1);

    let single_str = |arg: &[usize]| -> Option<String> {
        // Exactly one Str token, allowing a leading `&`.
        let strs: Vec<&Tok> = arg.iter().map(|&k| &toks[k]).collect();
        let non_amp: Vec<&&Tok> = strs.iter().filter(|t| !t.is_punct('&')).collect();
        match non_amp.as_slice() {
            [t] if t.kind == TokKind::Str => Some(t.text.clone()),
            _ => None,
        }
    };
    let trace_level = |arg: &[usize]| -> Option<String> {
        // `TraceLevel :: Name` anywhere in the arg.
        arg.iter().enumerate().find_map(|(p, &k)| {
            if toks[k].is_ident("TraceLevel") {
                arg.get(p + 3).map(|&k3| toks[k3].text.to_ascii_lowercase())
            } else {
                None
            }
        })
    };
    let format_key = |arg: &[usize]| -> Option<String> {
        // `& format ! ( "literal with {holes}" … )` → `*`-pattern.
        let has_format = arg
            .windows(2)
            .any(|w| toks[w[0]].is_ident("format") && toks[w[1]].is_punct('!'));
        if !has_format {
            return None;
        }
        let lit = arg.iter().find(|&&k| toks[k].kind == TokKind::Str)?;
        Some(pattern_of(&toks[*lit].text))
    };

    match method {
        "emit" => {
            // Tracer::emit(t, component, level, kind, build)
            let level = if args.len() >= 5 {
                trace_level(&args[2])
            } else {
                None
            };
            if let Some(level) = level {
                item.trace_emits.push(TraceEmit {
                    component: single_str(&args[1]),
                    kind: single_str(&args[3]),
                    level: Some(level),
                    line,
                });
            }
        }
        "trace" => {
            if args.len() >= 4 {
                // Ctx::trace(component, level, kind, build)
                if let Some(level) = trace_level(&args[1]) {
                    item.trace_emits.push(TraceEmit {
                        component: single_str(&args[0]),
                        kind: single_str(&args[2]),
                        level: Some(level),
                        line,
                    });
                }
            } else if args.len() == 3 {
                // Metrics::trace(key, t, v)
                if let Some(key) = single_str(&args[0]) {
                    item.metric_emits.push(MetricEmit {
                        key,
                        api: MetricApi::Series,
                        line,
                    });
                }
            }
        }
        "incr" | "set_counter" | "record" => {
            let api = if method == "record" {
                MetricApi::Histogram
            } else {
                MetricApi::Counter
            };
            if let Some(key) = args
                .first()
                .and_then(|a| single_str(a).or_else(|| format_key(a)))
            {
                item.metric_emits.push(MetricEmit { key, api, line });
            }
        }
        _ => {}
    }
}

/// Splits the argument list of the call whose `(` is at `open` into
/// top-level argument token-index slices.
fn split_args(toks: &[Tok], open: usize) -> Vec<Vec<usize>> {
    let mut args: Vec<Vec<usize>> = Vec::new();
    let mut cur: Vec<usize> = Vec::new();
    let mut depth = 1usize;
    let mut k = open + 1;
    while k < toks.len() && depth > 0 {
        let t = &toks[k];
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth == 1 && t.is_punct(',') {
            args.push(std::mem::take(&mut cur));
            k += 1;
            continue;
        }
        cur.push(k);
        k += 1;
    }
    if !cur.is_empty() {
        args.push(cur);
    }
    args
}

/// Replaces every `{…}` hole in a format literal with `*`.
fn pattern_of(lit: &str) -> String {
    let mut out = String::new();
    let mut in_hole = false;
    for c in lit.chars() {
        match c {
            '{' if !in_hole => {
                in_hole = true;
                out.push('*');
            }
            '}' if in_hole => in_hole = false,
            _ if in_hole => {}
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;

    fn parse(src: &str) -> Vec<FnItem> {
        parse_file("crates/x/src/lib.rs", &lex(src), false, false)
    }

    #[test]
    fn free_method_and_qualified_calls() {
        let items = parse("fn a() { b(); x.c(); Foo::d(); mod1::e(); }\nfn b() {}\n");
        assert_eq!(items.len(), 2);
        let calls: Vec<&Callee> = items[0].calls.iter().map(|c| &c.callee).collect();
        assert_eq!(
            calls,
            vec![
                &Callee::Free("b".into()),
                &Callee::Method("c".into()),
                &Callee::Qualified("Foo".into(), "d".into()),
                &Callee::Qualified("mod1".into(), "e".into()),
            ]
        );
    }

    #[test]
    fn impl_blocks_qualify_methods_and_record_traits() {
        let src = "impl Foo { fn m(&self) {} }\nimpl World<Ev> for Bar { fn handle(&mut self) {} }\nimpl<'a, E> Ctx<'a, E> { fn now(&self) {} }\nimpl fmt::Display for Baz { fn fmt(&self) {} }\n";
        let items = parse(src);
        let sigs: Vec<(String, Option<&str>)> = items
            .iter()
            .map(|f| (f.qualname(), f.trait_name.as_deref()))
            .collect();
        assert_eq!(
            sigs,
            vec![
                ("Foo::m".to_string(), None),
                ("Bar::handle".to_string(), Some("World")),
                ("Ctx::now".to_string(), None),
                ("Baz::fmt".to_string(), Some("Display")),
            ]
        );
    }

    #[test]
    fn cfg_test_regions_mark_fns_and_close_properly() {
        let src = "fn lib_fn() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let items = parse(src);
        let flags: Vec<(&str, bool)> = items.iter().map(|f| (f.name.as_str(), f.is_test)).collect();
        assert_eq!(
            flags,
            vec![("lib_fn", false), ("t", true), ("after", false)]
        );
    }

    #[test]
    fn sinks_are_detected_with_boundary_audit() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        let items = parse(src);
        assert_eq!(items[0].sinks.len(), 1);
        assert_eq!(items[0].sinks[0].kind, SinkKind::Wallclock);
        assert!(!items[0].sinks[0].audited);
        // Inside the wallclock boundary file with an allow, it's audited.
        let src = "fn f() { let t = std::time::Instant::now(); // lint:allow(wallclock)\n }\n";
        let items = parse_file("crates/sim/src/trace.rs", &lex(src), false, false);
        assert!(items[0].sinks[0].audited);
        // Same allow outside the boundary file: not audited.
        let items = parse_file("crates/net/src/host.rs", &lex(src), false, false);
        assert!(!items[0].sinks[0].audited);
        // Threads sink.
        let src = "fn g() { std::thread::scope(|s| {}); }\n";
        let items = parse(src);
        assert_eq!(items[0].sinks[0].kind, SinkKind::Thread);
        assert_eq!(items[0].sinks[0].what, "thread::scope");
    }

    #[test]
    fn panic_sites_with_documentation_flags() {
        let src = "fn f(o: Option<u8>, v: &[u8]) -> u8 {\n    let a = o.unwrap();\n    let b = o.expect(\"set in new()\"); // lint:allow(expect)\n    if a > 9 { panic!(\"no\"); }\n    v[0] + b\n}\n";
        let items = parse(src);
        let sites: Vec<(PanicKind, bool)> = items[0]
            .panics
            .iter()
            .map(|p| (p.kind, p.documented))
            .collect();
        assert_eq!(
            sites,
            vec![
                (PanicKind::Unwrap, false),
                (PanicKind::Expect, true),
                (PanicKind::PanicMacro, false),
                (PanicKind::Index, false),
            ]
        );
    }

    #[test]
    fn vec_macro_and_attributes_are_not_index_sites() {
        let src = "#[derive(Debug)]\nstruct S;\nfn f() -> Vec<u8> { let x: [u8; 2] = [1, 2]; vec![x[0]] }\n";
        let items = parse(src);
        // Only x[0] counts: the array literal, the type, the attribute
        // and the vec! bracket do not.
        assert_eq!(items[0].panics.len(), 1);
        assert_eq!(items[0].panics[0].kind, PanicKind::Index);
    }

    #[test]
    fn macro_invocations_are_recorded_as_call_sites() {
        // Regression (the pre-alloc-pass parser skipped macro names
        // entirely): `vec![…]` / `format!(…)` must surface as Macro
        // call sites, on the right lines, without disturbing the
        // surrounding call stream.
        let src = "fn f() {\n    let v = vec![1, 2];\n    let s = format!(\"{v:?}\");\n    g(s);\n}\nfn g(_s: String) {}\n";
        let items = parse(src);
        let calls: Vec<(&Callee, usize)> =
            items[0].calls.iter().map(|c| (&c.callee, c.line)).collect();
        assert_eq!(
            calls,
            vec![
                (&Callee::Macro("vec".into()), 2),
                (&Callee::Macro("format".into()), 3),
                (&Callee::Free("g".into()), 4),
            ]
        );
        // `!=` is an operator, not a macro invocation.
        let items = parse("fn h(a: u8, b: u8) -> bool { a != b }\n");
        assert!(items[0].calls.is_empty(), "{:?}", items[0].calls);
    }

    #[test]
    fn panic_macros_nested_inside_other_macros_are_recorded() {
        // Macros-in-macros: the panic site inside the outer macro's
        // argument tokens must be inventoried, and both macro
        // invocations must appear as call sites.
        let src = "fn f(x: u8) { assert_custom!(x > 0, format!(\"bad {}\", panic!(\"no\"))); }\n";
        let items = parse(src);
        assert_eq!(items[0].panics.len(), 1);
        assert_eq!(items[0].panics[0].kind, PanicKind::PanicMacro);
        let macros: Vec<&str> = items[0]
            .calls
            .iter()
            .filter_map(|c| match &c.callee {
                Callee::Macro(m) => Some(m.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(macros, vec!["assert_custom", "format", "panic"]);
    }

    #[test]
    fn alloc_sites_are_classified_with_loop_awareness() {
        let src = "fn f(xs: &[u32]) {\n    let mut acc = Vec::new();\n    for x in xs {\n        let t = vec![*x];\n        let u: Vec<u32> = xs.iter().copied().collect();\n        let w = Vec::with_capacity(4);\n        acc.push(t.len() + u.len() + w.capacity());\n    }\n    let b = Box::new(acc);\n    let s = String::from(\"x\");\n    let s2 = s.to_string();\n    let c = xs.to_vec();\n    let d = c.clone();\n    let m = BTreeMap::new();\n    let dm = DetMap::new();\n    let fs = format!(\"{b:?}{s2}{d:?}{m:?}{dm:?}\");\n    drop(fs);\n}\n";
        let items = parse(src);
        let sites: Vec<(AllocKind, &str)> = items[0]
            .allocs
            .iter()
            .map(|a| (a.kind, a.what.as_str()))
            .collect();
        assert_eq!(
            sites,
            vec![
                (AllocKind::Vec, "Vec::new"),
                (AllocKind::VecLoop, "vec!"),
                (AllocKind::Collect, ".collect()"),
                (AllocKind::VecLoop, "Vec::with_capacity"),
                (AllocKind::BoxAlloc, "Box::new"),
                (AllocKind::Str, "String::from"),
                (AllocKind::Str, ".to_string()"),
                (AllocKind::Clone, ".to_vec()"),
                (AllocKind::Clone, ".clone()"),
                (AllocKind::Map, "BTreeMap::new"),
                (AllocKind::Map, "DetMap::new"),
                (AllocKind::Str, "format!"),
            ]
        );
    }

    #[test]
    fn loop_body_tracking_closes_with_the_loop() {
        // After the loop's closing brace, Vec construction is per-call
        // again; `while` and bare `loop` arm the tracker too.
        let src = "fn f(n: usize) {\n    while n > 0 { let a = Vec::<u8>::new(); drop(a); }\n    loop { let b = vec![0u8]; break; }\n    let c: Vec<u8> = Vec::new();\n    drop(c);\n}\n";
        let items = parse(src);
        let kinds: Vec<AllocKind> = items[0].allocs.iter().map(|a| a.kind).collect();
        assert_eq!(
            kinds,
            vec![AllocKind::VecLoop, AllocKind::VecLoop, AllocKind::Vec]
        );
    }

    #[test]
    fn turbofish_calls_are_recognized() {
        // `.collect::<Vec<_>>()` and `Vec::<u8>::new()` are calls (and
        // allocation sites) despite the generics between name and `(`.
        let src = "fn f(xs: &[u8]) -> usize {\n    let v = xs.iter().copied().collect::<Vec<_>>();\n    let w = Vec::<u8>::new();\n    v.len() + w.len()\n}\n";
        let items = parse(src);
        assert!(items[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Method("collect".into())));
        assert!(items[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Qualified("Vec".into(), "new".into())));
        let kinds: Vec<AllocKind> = items[0].allocs.iter().map(|a| a.kind).collect();
        assert_eq!(kinds, vec![AllocKind::Collect, AllocKind::Vec]);
    }

    #[test]
    fn alloc_escape_on_fn_declaration_marks_the_item_exempt() {
        let src = "// lint:allow(alloc) — one-shot setup path\nfn setup() { let v = vec![1]; drop(v); }\nfn hot() { let v = vec![1]; drop(v); }\n";
        let items = parse(src);
        assert!(items[0].alloc_exempt);
        assert!(!items[1].alloc_exempt);
        // The sites are still *recorded* either way; exemption is
        // applied by the inventory, not the parser.
        assert_eq!(items[0].allocs.len(), 1);
    }

    #[test]
    fn trace_and_metric_emissions_are_extracted() {
        let src = r#"fn f(ctx: &mut C) {
            ctx.trace("gnutella", TraceLevel::Debug, "join", |f| { f.u64("host", 1); });
            ctx.tracer.emit(now, "net", TraceLevel::Info, "transfer", |f| {});
            ctx.metrics.incr("gnutella.joins", 1);
            ctx.metrics.record("x.h", 1.0);
            ctx.metrics.trace("engine.queue_depth", now, 1.0);
            metrics.incr(&format!("engine.events.{kind}"), n);
        }"#;
        let items = parse(src);
        let te: Vec<(Option<&str>, Option<&str>, Option<&str>)> = items[0]
            .trace_emits
            .iter()
            .map(|e| {
                (
                    e.component.as_deref(),
                    e.kind.as_deref(),
                    e.level.as_deref(),
                )
            })
            .collect();
        assert_eq!(
            te,
            vec![
                (Some("gnutella"), Some("join"), Some("debug")),
                (Some("net"), Some("transfer"), Some("info")),
            ]
        );
        let me: Vec<(&str, MetricApi)> = items[0]
            .metric_emits
            .iter()
            .map(|e| (e.key.as_str(), e.api))
            .collect();
        assert_eq!(
            me,
            vec![
                ("gnutella.joins", MetricApi::Counter),
                ("x.h", MetricApi::Histogram),
                ("engine.queue_depth", MetricApi::Series),
                ("engine.events.*", MetricApi::Counter),
            ]
        );
    }

    #[test]
    fn forwarders_with_variable_args_are_not_emissions() {
        // Ctx::trace forwarding to Tracer::emit passes variables: the
        // level arg carries no TraceLevel token, so nothing is recorded.
        let src = "fn trace(&mut self, c: &str, l: TL, k: &str) { self.tracer.emit(self.now, c, l, k, b); }\n";
        let items = parse(src);
        assert!(items[0].trace_emits.is_empty());
    }

    #[test]
    fn fn_without_body_is_skipped() {
        let src =
            "trait T { fn decl(&self); fn with_default(&self) { helper(); } }\nfn helper() {}\n";
        let items = parse(src);
        let names: Vec<&str> = items.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["with_default", "helper"]);
    }

    #[test]
    fn truncating_casts_are_recorded_with_documentation_flags() {
        let src = "fn f(x: u64, n: usize) -> u32 {\n    let a = x as u32;\n    let b = n as u16; // lint:allow(cast) — bound: n < 100 by construction\n    let c = x as usize;\n    let d = x as u64;\n    a + b as u32 + c as u32 + d as u32\n}\n";
        let items = parse(src);
        let sites: Vec<(&str, usize, bool)> = items[0]
            .casts
            .iter()
            .map(|c| (c.target.as_str(), c.line, c.documented))
            .collect();
        // `as usize` / `as u64` are widening-or-equal on this codebase's
        // index types and are not inventoried.
        assert_eq!(
            sites,
            vec![
                ("u32", 2, false),
                ("u16", 3, true),
                ("u32", 6, false),
                ("u32", 6, false),
                ("u32", 6, false),
            ]
        );
    }

    #[test]
    fn hazard_markers_are_recorded_per_function() {
        let src = "fn f(c: &Cell<u64>, m: &Mutex<Vec<u8>>) {\n    static mut SCRATCH: u64 = 0;\n    c.set(c.get() + 1);\n    m.lock().unwrap().push(1);\n    n.fetch_add(1, Ordering::Relaxed);\n}\nfn pure(s: &str) -> String { s.replace('x', \"y\") }\n";
        let items = parse(src);
        let sites: Vec<(HazardKind, &str)> = items[0]
            .hazards
            .iter()
            .map(|h| (h.kind, h.what.as_str()))
            .collect();
        assert_eq!(
            sites,
            vec![
                (HazardKind::CellWrite, "static mut"),
                (HazardKind::CellWrite, ".set("),
                (HazardKind::Lock, ".lock("),
                (HazardKind::Atomic, ".fetch_add("),
            ]
        );
        // `replace` collides with `str::replace` and is deliberately not
        // a whole-function marker.
        assert!(items[1].hazards.is_empty(), "{:?}", items[1].hazards);
    }

    #[test]
    fn scope_spawn_workers_are_extracted_with_calls_and_hazards() {
        // A scope region with two workers: a move closure calling
        // through `Self::`, and a closure writing a captured Cell.
        let src = "impl R {\n    fn build(&self, c: &Cell<u64>) {\n        std::thread::scope(|s| {\n            s.spawn(move || Self::chunk(1, 2));\n            s.spawn(|| c.set(c.get() + 1));\n        });\n    }\n}\n";
        let items = parse(src);
        assert_eq!(items[0].spawns.len(), 1);
        let sp = &items[0].spawns[0];
        assert_eq!(sp.what, "thread::scope");
        assert_eq!(sp.line, 3);
        assert_eq!(sp.workers.len(), 2);
        assert_eq!(sp.workers[0].line, 4);
        assert!(sp.workers[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Qualified("Self".into(), "chunk".into())));
        assert!(sp.workers[0].hazards.is_empty());
        let hz: Vec<(HazardKind, usize)> = sp.workers[1]
            .hazards
            .iter()
            .map(|h| (h.kind, h.line))
            .collect();
        assert_eq!(hz, vec![(HazardKind::CellWrite, 5)]);
    }

    #[test]
    fn crossbeam_scope_and_bare_spawn_are_named_distinctly() {
        let src = "fn a() { crossbeam::thread::scope(|s| { s.spawn(|_| work()); }).unwrap(); }\nfn b() { std::thread::spawn(move || work()); }\nfn work() {}\n";
        let items = parse(src);
        assert_eq!(items[0].spawns[0].what, "crossbeam::thread::scope");
        assert_eq!(items[0].spawns[0].workers.len(), 1);
        assert_eq!(items[1].spawns[0].what, "thread::spawn");
        assert_eq!(items[1].spawns[0].workers.len(), 1);
        for f in &items[..2] {
            assert!(f.spawns[0].workers[0]
                .calls
                .iter()
                .any(|c| c.callee == Callee::Free("work".into())));
        }
    }

    #[test]
    fn nested_closures_and_method_chains_inside_workers_are_scanned() {
        // Calls made from a closure nested inside the worker, and a
        // hazard reached through a method-call chain on a capture, must
        // both be attributed to the worker.
        let src = "fn f(state: &S, xs: &[u8]) {\n    std::thread::scope(|s| {\n        s.spawn(move || {\n            let n = xs.iter().map(|x| helper(*x)).count();\n            state.cache().counters().set(n as u64);\n        });\n    });\n}\nfn helper(_x: u8) -> u8 { 0 }\n";
        let items = parse(src);
        let w = &items[0].spawns[0].workers[0];
        assert!(w
            .calls
            .iter()
            .any(|c| c.callee == Callee::Free("helper".into())));
        for m in ["cache", "counters", "set"] {
            assert!(
                w.calls.iter().any(|c| c.callee == Callee::Method(m.into())),
                "missing method call {m}"
            );
        }
        let hz: Vec<(HazardKind, &str)> = w
            .hazards
            .iter()
            .map(|h| (h.kind, h.what.as_str()))
            .collect();
        assert_eq!(hz, vec![(HazardKind::CellWrite, ".set(")]);
        // `as u64` widens; nothing lands in the cast inventory.
        assert!(items[0].casts.is_empty());
    }

    #[test]
    fn worker_rng_and_float_accum_hazards_are_flagged() {
        let src = "fn f(xs: &[f64], out: &Mutex<Vec<f64>>) {\n    std::thread::scope(|s| {\n        s.spawn(move || {\n            let r = thread_rng();\n            let t = xs.iter().copied().sum::<f64>();\n            out.lock().unwrap().push(t);\n        });\n    });\n}\n";
        let items = parse(src);
        let w = &items[0].spawns[0].workers[0];
        let hz: Vec<(HazardKind, &str)> = w
            .hazards
            .iter()
            .map(|h| (h.kind, h.what.as_str()))
            .collect();
        assert_eq!(
            hz,
            vec![
                (HazardKind::Rng, "thread_rng"),
                (HazardKind::FloatAccum, ".sum::<float>()"),
                (HazardKind::Lock, ".lock("),
            ]
        );
    }

    #[test]
    fn where_clause_and_return_generics_do_not_derail_body_detection() {
        let src = "fn f<T>(x: T) -> Result<Vec<T>, String> where T: Clone { g(); Ok(vec![]) }\nfn g() {}\n";
        let items = parse(src);
        assert_eq!(items.len(), 2);
        assert!(items[0]
            .calls
            .iter()
            .any(|c| c.callee == Callee::Free("g".into())));
    }
}
