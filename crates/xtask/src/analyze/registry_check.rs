//! Registry drift pass: emitted trace kinds / metric keys vs the
//! central declarations in `uap_sim::trace::registry` vs the tables in
//! `docs/OBSERVABILITY.md`.
//!
//! Three-way agreement is enforced:
//!
//! 1. every emission site in non-test code uses a declared
//!    `(component, kind)` at the declared level, and a declared metric
//!    key through the API matching its declared kind;
//! 2. every declared kind / key is actually emitted somewhere (dead
//!    declarations are drift too);
//! 3. the marker-delimited tables in `docs/OBSERVABILITY.md` match the
//!    declarations cell-for-cell.
//!
//! The declared side is read from the registry *source* (same lexer as
//! the rest of the analyzer), so the checker needs no runtime link to
//! `uap-sim` and stays honest about what is actually written down.

use std::path::Path;

use crate::analyze::lexer::{lex, Lexed, TokKind};
use crate::analyze::parser::FnItem;

/// One declared trace kind, as parsed from the registry source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceDecl {
    pub component: String,
    pub kind: String,
    pub level: String,
    pub doc: String,
}

/// One declared metric key, as parsed from the registry source.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricDecl {
    pub key: String,
    /// Lower-case `MetricKind` variant name (`"counter"`, …).
    pub kind: String,
    pub doc: String,
}

/// The declared side of the registry.
#[derive(Clone, Debug, Default)]
pub struct Decls {
    pub components: Vec<String>,
    pub trace_kinds: Vec<TraceDecl>,
    pub metrics: Vec<MetricDecl>,
}

/// Runs the full pass against the workspace at `root`.
pub fn run(root: &Path, fns: &[FnItem]) -> Vec<String> {
    let mut out = Vec::new();
    let reg_path = root.join("crates/sim/src/trace/registry.rs");
    let Ok(reg_src) = std::fs::read_to_string(&reg_path) else {
        return vec![format!(
            "registry: cannot read {} — the trace/metrics registry is missing",
            reg_path.display()
        )];
    };
    let decls = parse_registry_source(&reg_src);
    if decls.trace_kinds.is_empty() || decls.metrics.is_empty() {
        out.push(
            "registry: parsed zero declarations from trace/registry.rs \
             (TRACE_KINDS / METRICS const shape changed?)"
                .to_string(),
        );
        return out;
    }

    out.extend(check_emissions(&decls, fns));
    out.extend(check_span_conventions(&decls));

    let docs_path = root.join("docs/OBSERVABILITY.md");
    match std::fs::read_to_string(&docs_path) {
        Ok(md) => out.extend(check_docs(&decls, &md)),
        Err(_) => out.push(format!(
            "registry: cannot read {} for the docs drift check",
            docs_path.display()
        )),
    }
    out
}

/// Parses `COMPONENTS`, `TRACE_KINDS` and `METRICS` out of the registry
/// source text.
pub fn parse_registry_source(src: &str) -> Decls {
    let lexed = lex(src);
    let mut decls = Decls {
        components: const_strs(&lexed, "COMPONENTS"),
        ..Decls::default()
    };
    for fields in const_struct_literals(&lexed, "TRACE_KINDS") {
        decls.trace_kinds.push(TraceDecl {
            component: fields.get_str("component"),
            kind: fields.get_str("kind"),
            level: fields.get_str("level"),
            doc: fields.get_str("doc"),
        });
    }
    for fields in const_struct_literals(&lexed, "METRICS") {
        decls.metrics.push(MetricDecl {
            key: fields.get_str("key"),
            kind: fields.get_str("kind"),
            doc: fields.get_str("doc"),
        });
    }
    decls
}

/// Field-name → value map for one struct literal.
struct Fields(Vec<(String, String)>);

impl Fields {
    fn get_str(&self, name: &str) -> String {
        self.0
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.clone())
            .unwrap_or_default()
    }
}

/// Collects the string literals inside `const NAME: … = &[ … ];`.
fn const_strs(lexed: &Lexed, name: &str) -> Vec<String> {
    let Some(range) = const_body(lexed, name) else {
        return Vec::new();
    };
    lexed.toks[range.0..range.1]
        .iter()
        .filter(|t| t.kind == TokKind::Str)
        .map(|t| t.text.clone())
        .collect()
}

/// Collects the struct literals inside `const NAME: &[T] = &[ T { … }, … ];`.
fn const_struct_literals(lexed: &Lexed, name: &str) -> Vec<Fields> {
    let Some(range) = const_body(lexed, name) else {
        return Vec::new();
    };
    let toks = &lexed.toks;
    let mut out = Vec::new();
    let mut i = range.0;
    while i < range.1 {
        if !toks[i].is_punct('{') {
            i += 1;
            continue;
        }
        // One struct literal: field `ident : value ,` pairs until the
        // matching close brace (values here are flat literals/paths).
        let mut fields = Vec::new();
        let mut j = i + 1;
        while j < range.1 && !toks[j].is_punct('}') {
            if toks[j].kind == TokKind::Ident && toks.get(j + 1).is_some_and(|t| t.is_punct(':')) {
                let fname = toks[j].text.clone();
                // Value: scan to the next top-level ',' or '}'.
                let mut k = j + 2;
                let mut value = String::new();
                while k < range.1 && !toks[k].is_punct(',') && !toks[k].is_punct('}') {
                    let t = &toks[k];
                    if t.kind == TokKind::Str {
                        value = t.text.clone();
                    } else if t.kind == TokKind::Ident {
                        // Path value (`MetricKind::Counter`): keep the
                        // last segment, lower-cased to match
                        // `MetricKind::name()`.
                        value = t.text.to_ascii_lowercase();
                    }
                    k += 1;
                }
                fields.push((fname, value));
                j = k;
            } else {
                j += 1;
            }
        }
        out.push(Fields(fields));
        i = j + 1;
    }
    out
}

/// Token range `(start, end)` of the initializer of `const NAME … = … ;`.
fn const_body(lexed: &Lexed, name: &str) -> Option<(usize, usize)> {
    let toks = &lexed.toks;
    let at = toks
        .iter()
        .position(|t| t.is_ident(name) && t.kind == TokKind::Ident)?;
    let eq = (at..toks.len()).find(|&i| toks[i].is_punct('='))?;
    let mut depth = 0usize;
    for (i, t) in toks.iter().enumerate().skip(eq + 1) {
        if t.is_punct('[') || t.is_punct('{') || t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(']') || t.is_punct('}') || t.is_punct(')') {
            depth = depth.saturating_sub(1);
        } else if depth == 0 && t.is_punct(';') {
            return Some((eq + 1, i));
        }
    }
    None
}

/// True when `key` matches `decl_key` under the registry's pattern
/// semantics: exact match, identical pattern, or a concrete key under a
/// trailing-`*` pattern with a non-empty dynamic segment.
fn key_matches(decl_key: &str, key: &str) -> bool {
    if decl_key == key {
        return true;
    }
    if let Some(prefix) = decl_key.strip_suffix('*') {
        return key.len() > prefix.len() && key.starts_with(prefix);
    }
    false
}

/// Checks every emission site in non-test code against the declarations,
/// and every declaration against the emission sites.
pub fn check_emissions(decls: &Decls, fns: &[FnItem]) -> Vec<String> {
    let mut out = Vec::new();
    let mut kind_emitted = vec![0usize; decls.trace_kinds.len()];
    let mut metric_emitted = vec![0usize; decls.metrics.len()];

    for f in fns.iter().filter(|f| !f.is_test) {
        for e in &f.trace_emits {
            let site = format!("{}:{}", f.file, e.line);
            let Some(component) = &e.component else {
                continue; // forwarder with variable args — not a schema site
            };
            if !decls.components.iter().any(|c| c == component) {
                out.push(format!(
                    "registry: {site}: trace component \"{component}\" is not in \
                     registry::COMPONENTS"
                ));
                continue;
            }
            let Some(kind) = &e.kind else {
                out.push(format!(
                    "registry: {site}: dynamic trace kind for component \"{component}\" — \
                     kinds must be string literals so the schema stays checkable"
                ));
                continue;
            };
            match decls
                .trace_kinds
                .iter()
                .position(|d| &d.component == component && &d.kind == kind)
            {
                Some(di) => {
                    kind_emitted[di] += 1;
                    if let Some(level) = &e.level {
                        let declared = &decls.trace_kinds[di].level;
                        if level != declared {
                            out.push(format!(
                                "registry: {site}: trace {component}/{kind} emitted at level \
                                 \"{level}\" but declared \"{declared}\""
                            ));
                        }
                    }
                }
                None => out.push(format!(
                    "registry: {site}: trace kind {component}/{kind} is not declared in \
                     registry::TRACE_KINDS"
                )),
            }
        }

        for e in &f.metric_emits {
            let site = format!("{}:{}", f.file, e.line);
            match decls
                .metrics
                .iter()
                .position(|d| key_matches(&d.key, &e.key))
            {
                Some(di) => {
                    metric_emitted[di] += 1;
                    let declared = &decls.metrics[di].kind;
                    if declared != e.api.name() {
                        out.push(format!(
                            "registry: {site}: metric key \"{}\" written through the {} API \
                             but declared as a {declared}",
                            e.key,
                            e.api.name()
                        ));
                    }
                }
                None => out.push(format!(
                    "registry: {site}: metric key \"{}\" is not declared in \
                     registry::METRICS",
                    e.key
                )),
            }
        }
    }

    for (di, d) in decls.trace_kinds.iter().enumerate() {
        if kind_emitted[di] == 0 {
            out.push(format!(
                "registry: trace kind {}/{} is declared but never emitted from non-test code",
                d.component, d.kind
            ));
        }
    }
    for (di, d) in decls.metrics.iter().enumerate() {
        if metric_emitted[di] == 0 {
            out.push(format!(
                "registry: metric key \"{}\" is declared but never emitted from non-test code",
                d.key
            ));
        }
    }
    out
}

/// Checks the span-kind conventions of the causal-provenance layer (see
/// `docs/OBSERVABILITY.md` § Causal spans): a component that declares
/// `span.open` must also declare `span.close` (and vice versa), and the
/// pair must sit at the same level — an open the tooling can see whose
/// close is filtered away (or the reverse) makes every span of that
/// component read as unbalanced in `trace check`.
pub fn check_span_conventions(decls: &Decls) -> Vec<String> {
    let mut out = Vec::new();
    for c in &decls.components {
        let find = |kind: &str| {
            decls
                .trace_kinds
                .iter()
                .find(|d| &d.component == c && d.kind == kind)
        };
        match (find("span.open"), find("span.close")) {
            (Some(open), Some(close)) => {
                if open.level != close.level {
                    out.push(format!(
                        "registry: component \"{c}\" declares span.open at level \
                         \"{}\" but span.close at \"{}\" — a level filter would \
                         retain one side of every span",
                        open.level, close.level
                    ));
                }
            }
            (Some(_), None) => out.push(format!(
                "registry: component \"{c}\" declares span.open without span.close — \
                 spans can never be balanced"
            )),
            (None, Some(_)) => out.push(format!(
                "registry: component \"{c}\" declares span.close without span.open — \
                 every close is an orphan"
            )),
            (None, None) => {}
        }
    }
    out
}

/// Checks the marker-delimited tables in `docs/OBSERVABILITY.md` against
/// the declarations, cell-for-cell in both directions.
pub fn check_docs(decls: &Decls, md: &str) -> Vec<String> {
    let mut out = Vec::new();

    let trace_rows = table_rows(md, "registry:trace-kinds");
    let metric_rows = table_rows(md, "registry:metrics");
    match trace_rows {
        None => out.push(
            "registry: docs/OBSERVABILITY.md is missing the \
             <!-- registry:trace-kinds:begin/end --> table"
                .to_string(),
        ),
        Some(rows) => {
            let want: Vec<Vec<String>> = decls
                .trace_kinds
                .iter()
                .map(|d| {
                    vec![
                        d.component.clone(),
                        format!("`{}`", d.kind),
                        d.level.clone(),
                        d.doc.clone(),
                    ]
                })
                .collect();
            diff_rows(&mut out, "trace-kinds", &want, &rows);
        }
    }
    match metric_rows {
        None => out.push(
            "registry: docs/OBSERVABILITY.md is missing the \
             <!-- registry:metrics:begin/end --> table"
                .to_string(),
        ),
        Some(rows) => {
            let want: Vec<Vec<String>> = decls
                .metrics
                .iter()
                .map(|d| vec![format!("`{}`", d.key), d.kind.clone(), d.doc.clone()])
                .collect();
            diff_rows(&mut out, "metrics", &want, &rows);
        }
    }
    out
}

/// Extracts the body rows of the markdown table between
/// `<!-- <marker>:begin -->` and `<!-- <marker>:end -->`. Returns `None`
/// when the markers are absent.
fn table_rows(md: &str, marker: &str) -> Option<Vec<Vec<String>>> {
    let begin = format!("<!-- {marker}:begin -->");
    let end = format!("<!-- {marker}:end -->");
    let start = md.find(&begin)? + begin.len();
    let stop = md[start..].find(&end)? + start;
    let mut rows = Vec::new();
    for line in md[start..stop].lines() {
        let line = line.trim();
        if !line.starts_with('|') {
            continue;
        }
        let cells: Vec<String> = line
            .trim_matches('|')
            .split('|')
            .map(|c| c.trim().to_string())
            .collect();
        // Skip the header and the |---| separator rows.
        let is_sep = cells
            .iter()
            .all(|c| !c.is_empty() && c.chars().all(|ch| ch == '-' || ch == ':'));
        let is_header = cells
            .first()
            .is_some_and(|c| c == "component" || c == "key");
        if !is_sep && !is_header {
            rows.push(cells);
        }
    }
    Some(rows)
}

/// Reports rows present on one side but not the other.
fn diff_rows(out: &mut Vec<String>, what: &str, want: &[Vec<String>], got: &[Vec<String>]) {
    for row in want {
        if !got.contains(row) {
            out.push(format!(
                "registry: docs/OBSERVABILITY.md {what} table is missing the row for {}",
                row.join(" | ")
            ));
        }
    }
    for row in got {
        if !want.contains(row) {
            out.push(format!(
                "registry: docs/OBSERVABILITY.md {what} table has a stale row: {}",
                row.join(" | ")
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;
    use crate::analyze::parser::parse_file;

    fn decls() -> Decls {
        Decls {
            components: vec!["engine".into(), "net".into()],
            trace_kinds: vec![TraceDecl {
                component: "net".into(),
                kind: "transfer".into(),
                level: "debug".into(),
                doc: "a transfer".into(),
            }],
            metrics: vec![
                MetricDecl {
                    key: "net.bytes".into(),
                    kind: "counter".into(),
                    doc: "bytes".into(),
                },
                MetricDecl {
                    key: "engine.events.*".into(),
                    kind: "counter".into(),
                    doc: "per-kind".into(),
                },
            ],
        }
    }

    fn fns_of(src: &str) -> Vec<FnItem> {
        parse_file("crates/net/src/x.rs", &lex(src), false, false)
    }

    #[test]
    fn registry_source_parses_to_decls() {
        let src = r#"
pub const COMPONENTS: &[&str] = &["engine", "net"];
pub const TRACE_KINDS: &[TraceKindSpec] = &[
    TraceKindSpec { component: "net", kind: "transfer", level: "debug", doc: "a transfer" },
];
pub const METRICS: &[MetricSpec] = &[
    MetricSpec { key: "net.bytes", kind: MetricKind::Counter, doc: "bytes" },
];
"#;
        let d = parse_registry_source(src);
        assert_eq!(d.components, vec!["engine", "net"]);
        assert_eq!(
            d.trace_kinds,
            vec![TraceDecl {
                component: "net".into(),
                kind: "transfer".into(),
                level: "debug".into(),
                doc: "a transfer".into(),
            }]
        );
        assert_eq!(d.metrics[0].kind, "counter");
    }

    #[test]
    fn unregistered_trace_kind_is_flagged() {
        let fns = fns_of(
            "fn f(ctx: &mut C) { ctx.trace(\"net\", TraceLevel::Debug, \"not_declared\", |f| {}); }\n",
        );
        let v = check_emissions(&decls(), &fns);
        // (Plus never-emitted violations for the declared entries, which
        // this synthetic corpus legitimately doesn't emit.)
        let undeclared: Vec<&String> = v.iter().filter(|m| m.contains("is not declared")).collect();
        assert_eq!(undeclared.len(), 1, "{v:?}");
        assert!(
            undeclared[0].contains("net/not_declared"),
            "{}",
            undeclared[0]
        );
        assert!(
            undeclared[0].contains("crates/net/src/x.rs:1"),
            "{}",
            undeclared[0]
        );
    }

    #[test]
    fn declared_but_never_emitted_key_is_flagged() {
        // Emit the trace kind and one metric; the other declared metric
        // (net.bytes) never appears → exactly one violation.
        let fns = fns_of(
            "fn f(ctx: &mut C) {\n    ctx.trace(\"net\", TraceLevel::Debug, \"transfer\", |f| {});\n    ctx.metrics.incr(&format!(\"engine.events.{k}\"), 1);\n}\n",
        );
        let v = check_emissions(&decls(), &fns);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("\"net.bytes\" is declared but never emitted"));
    }

    #[test]
    fn level_and_api_kind_mismatches_are_flagged() {
        let fns = fns_of(
            "fn f(ctx: &mut C) {\n    ctx.trace(\"net\", TraceLevel::Info, \"transfer\", |f| {});\n    ctx.metrics.record(\"net.bytes\", 1.0);\n    ctx.metrics.incr(\"engine.events.timer\", 1);\n}\n",
        );
        let v = check_emissions(&decls(), &fns);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v[0].contains("emitted at level \"info\" but declared \"debug\""));
        assert!(v[1].contains("written through the histogram API but declared as a counter"));
    }

    #[test]
    fn test_code_emissions_are_ignored() {
        let fns = parse_file(
            "crates/net/src/x.rs",
            &lex("#[cfg(test)]\nmod tests {\n    fn t(ctx: &mut C) { ctx.trace(\"net\", TraceLevel::Debug, \"scratch\", |f| {}); }\n}\n"),
            false,
            false,
        );
        let v = check_emissions(&decls(), &fns);
        // Only the never-emitted violations fire; the test emission of an
        // undeclared kind does not.
        assert!(v.iter().all(|m| m.contains("never emitted")), "{v:?}");
    }

    #[test]
    fn span_conventions_require_balanced_same_level_pairs() {
        let mut d = decls();
        assert!(check_span_conventions(&d).is_empty(), "no span kinds → ok");

        // A balanced pair at one level is fine.
        d.trace_kinds.push(TraceDecl {
            component: "net".into(),
            kind: "span.open".into(),
            level: "debug".into(),
            doc: "open".into(),
        });
        d.trace_kinds.push(TraceDecl {
            component: "net".into(),
            kind: "span.close".into(),
            level: "debug".into(),
            doc: "close".into(),
        });
        assert!(check_span_conventions(&d).is_empty());

        // Level mismatch between open and close is drift.
        d.trace_kinds.last_mut().unwrap().level = "info".into();
        let v = check_span_conventions(&d);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("span.open at level \"debug\" but span.close at \"info\""));

        // An open with no close at all is drift too.
        d.trace_kinds.pop();
        let v = check_span_conventions(&d);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("span.open without span.close"));

        // And a close with no open.
        d.trace_kinds.last_mut().unwrap().kind = "span.close".into();
        let v = check_span_conventions(&d);
        assert!(v[0].contains("span.close without span.open"), "{v:?}");
    }

    #[test]
    fn docs_tables_in_sync_and_drifting() {
        let good = "\n<!-- registry:trace-kinds:begin -->\n\
| component | kind | level | description |\n\
|-----------|------|-------|-------------|\n\
| net | `transfer` | debug | a transfer |\n\
<!-- registry:trace-kinds:end -->\n\
<!-- registry:metrics:begin -->\n\
| key | kind | description |\n\
|-----|------|-------------|\n\
| `net.bytes` | counter | bytes |\n\
| `engine.events.*` | counter | per-kind |\n\
<!-- registry:metrics:end -->\n";
        assert!(check_docs(&decls(), good).is_empty());

        let stale = good.replace("| net | `transfer` | debug |", "| net | `xfer` | debug |");
        let v = check_docs(&decls(), &stale);
        assert_eq!(v.len(), 2, "{v:?}"); // missing row + stale row
        assert!(v[0].contains("missing the row"));
        assert!(v[1].contains("stale row"));

        let v = check_docs(&decls(), "no markers at all");
        assert_eq!(v.len(), 2);
        assert!(v[0].contains("missing the <!-- registry:trace-kinds:begin/end --> table"));
    }
}
