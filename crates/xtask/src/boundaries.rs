//! The audited determinism boundaries, declared exactly once.
//!
//! Two tools consume these lists: the line-level determinism lint
//! ([`crate::lint`]) and the call-graph analyzer ([`crate::analyze`]).
//! Both enforce the same contract — a `wallclock` allow escape comment
//! is honored only inside [`WALLCLOCK_BOUNDARY`] and a `threads` one
//! only inside a file carrying a [`PARALLEL_REGIONS`] entry — so
//! extending an audited boundary is a single edit here, reviewed once,
//! and picked up by every static-analysis pass at the same time.

/// The only files where a `wallclock` allow comment is honored: the
/// trace sink's `WallTimer` boundary (see `docs/OBSERVABILITY.md`).
/// Anywhere else the allow comment is itself a violation — wall-clock
/// readings must stay out of simulation state and traced output.
pub const WALLCLOCK_BOUNDARY: [&str; 1] = ["crates/sim/src/trace.rs"];

/// One audited fork-join parallel region: a function that is allowed to
/// spawn worker threads, together with the *declared merge discipline*
/// that makes its output independent of thread scheduling.
///
/// This manifest is the single source of truth for workspace
/// parallelism. The line lint derives the `threads` allow boundary from
/// the `file` column; the analyzer's `--pass=par` checks the manifest
/// against the actual thread-spawn sites in both directions (an
/// undeclared spawn site fails, and a manifest entry whose function no
/// longer spawns fails as stale) and audits each region's worker
/// closures for determinism hazards not covered by `audited_hazards`.
/// See `docs/STATIC_ANALYSIS.md` ("Parallel-region discipline").
#[derive(Clone, Copy, Debug)]
pub struct ParallelRegion {
    /// Workspace-relative file the region lives in (suffix-matched,
    /// separator-agnostic, like the other boundary lists).
    pub file: &'static str,
    /// Qualified name (`Type::method` or free-function name) of the
    /// function containing the thread-spawn site(s).
    pub function: &'static str,
    /// Human-auditable statement of why the merge is deterministic.
    pub discipline: &'static str,
    /// Worker-side hazard classes (see the analyzer's `HazardKind`
    /// names: `"cell-write"`, `"atomic"`, `"lock"`, `"channel"`,
    /// `"rng"`, `"float-accum"`) that the discipline explicitly audits.
    /// Any worker hazard *not* listed here is a violation.
    pub audited_hazards: &'static [&'static str],
}

/// Every audited parallel region in the workspace. Keep sorted by file
/// then function; `docs/PERFORMANCE.md` carries the determinism
/// argument for the routing regions and `crates/core/src/experiments/
/// sweep.rs` documents the sweep runner's.
pub const PARALLEL_REGIONS: [ParallelRegion; 4] = [
    ParallelRegion {
        file: "crates/core/src/experiments/sweep.rs",
        function: "parallel_map",
        discipline: "index-slotted merge: workers claim items via an atomic counter and \
                     write results into per-index slots, so output order equals input order \
                     regardless of scheduling",
        audited_hazards: &["atomic", "lock"],
    },
    ParallelRegion {
        file: "crates/net/src/routing.rs",
        function: "Routing::compute_indexed_threads",
        discipline: "source-ordered join: workers build disjoint contiguous source-range \
                     chunks, joined in spawn (= source) order; byte-identical to the serial \
                     build for any thread count",
        audited_hazards: &[],
    },
    ParallelRegion {
        file: "crates/net/src/routing.rs",
        function: "Routing::compute_with_mask_threads",
        discipline: "source-ordered join: workers build disjoint contiguous source-range \
                     chunks, joined in spawn (= source) order; byte-identical to the serial \
                     build for any thread count",
        audited_hazards: &[],
    },
    ParallelRegion {
        file: "crates/net/src/routing.rs",
        function: "Routing::repair_with_mask",
        discipline: "source-ordered join over the sorted dirty list: workers recompute \
                     disjoint dirty-row ranges, joined in spawn order and spliced back in \
                     source order; byte-identical to a full rebuild",
        audited_hazards: &[],
    },
];

/// Rule name of the allocation-discipline escape, consumed by the
/// analyzer's alloc pass (`docs/STATIC_ANALYSIS.md`). Unlike the
/// wallclock / threads escapes, the alloc escape is **per function, not
/// per file**: a `// lint:allow(alloc) — <why this path is one-shot>`
/// comment on (or directly above) a `fn` declaration exempts that whole
/// body from the hot-path allocation inventory. It is reserved for
/// audited setup / one-shot paths — code that is *reachable* from the
/// per-event entry set but provably runs O(1) times per run segment
/// (fault-epoch rebuilds, end-of-run flushes), where a fresh allocation
/// is not a per-event cost.
pub const ALLOC_RULE: &str = "alloc";

/// Rule name of the truncating-cast escape, consumed by the analyzer's
/// cast pass (`docs/STATIC_ANALYSIS.md`). Per line, like the panic
/// escapes: a `// lint:allow(cast) — bound: <why the value fits>`
/// comment on (or directly above) a truncating `as` cast documents the
/// bound and removes the site from the ratcheted inventory. Reserved
/// for cases where the bound is structural (CSR link indices bounded by
/// the arena length, AS indices bounded by the u16 `AsId` domain) —
/// anything host-count-proportional must widen or use a checked
/// conversion instead, because it silently corrupts at 1M+ hosts.
pub const CAST_RULE: &str = "cast";

/// True when `label` is one of the [`WALLCLOCK_BOUNDARY`] files.
pub fn in_wallclock_boundary(label: &str) -> bool {
    let norm = label.replace('\\', "/");
    WALLCLOCK_BOUNDARY.iter().any(|b| norm.ends_with(b))
}

/// True when `label` is a file carrying at least one audited
/// [`PARALLEL_REGIONS`] entry — the only files where a `threads` allow
/// comment is honored.
pub fn in_threads_boundary(label: &str) -> bool {
    let norm = label.replace('\\', "/");
    PARALLEL_REGIONS.iter().any(|r| norm.ends_with(r.file))
}

/// The distinct files of [`PARALLEL_REGIONS`], for diagnostics.
pub fn threads_boundary_files() -> Vec<&'static str> {
    let mut v: Vec<&'static str> = PARALLEL_REGIONS.iter().map(|r| r.file).collect();
    v.dedup();
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_membership_is_suffix_based_and_separator_agnostic() {
        assert!(in_wallclock_boundary("/abs/path/crates/sim/src/trace.rs"));
        assert!(in_wallclock_boundary("crates\\sim\\src\\trace.rs"));
        assert!(!in_wallclock_boundary("crates/sim/src/engine.rs"));
        assert!(in_threads_boundary("crates/net/src/routing.rs"));
        assert!(in_threads_boundary("crates/core/src/experiments/sweep.rs"));
        assert!(!in_threads_boundary("crates/gnutella/src/sim.rs"));
    }

    #[test]
    fn boundaries_are_disjoint() {
        // A file audited for wall-clock reads is not thereby audited for
        // threading, and vice versa.
        for w in WALLCLOCK_BOUNDARY {
            assert!(!in_threads_boundary(w));
        }
        for r in PARALLEL_REGIONS {
            assert!(!in_wallclock_boundary(r.file));
        }
    }

    #[test]
    fn manifest_is_sorted_and_files_dedupe() {
        // threads_boundary_files relies on sorted order for dedup, and a
        // sorted manifest keeps drift diffs reviewable.
        for pair in PARALLEL_REGIONS.windows(2) {
            assert!(
                (pair[0].file, pair[0].function) < (pair[1].file, pair[1].function),
                "PARALLEL_REGIONS must stay sorted by (file, function)"
            );
        }
        assert_eq!(
            threads_boundary_files(),
            vec![
                "crates/core/src/experiments/sweep.rs",
                "crates/net/src/routing.rs"
            ]
        );
    }

    #[test]
    fn audited_hazards_use_known_names() {
        const KNOWN: [&str; 6] = [
            "cell-write",
            "atomic",
            "lock",
            "channel",
            "rng",
            "float-accum",
        ];
        for r in PARALLEL_REGIONS {
            for h in r.audited_hazards {
                assert!(KNOWN.contains(h), "unknown hazard class `{h}` in manifest");
            }
        }
    }
}
