//! The audited determinism boundaries, declared exactly once.
//!
//! Two tools consume these lists: the line-level determinism lint
//! ([`crate::lint`]) and the call-graph analyzer ([`crate::analyze`]).
//! Both enforce the same contract — a `wallclock` allow escape comment
//! is honored only inside [`WALLCLOCK_BOUNDARY`] and a `threads` one
//! only inside [`THREADS_BOUNDARY`] — so extending an audited
//! boundary is a single edit here, reviewed once, and picked up by every
//! static-analysis pass at the same time.

/// The only files where a `wallclock` allow comment is honored: the
/// trace sink's `WallTimer` boundary (see `docs/OBSERVABILITY.md`).
/// Anywhere else the allow comment is itself a violation — wall-clock
/// readings must stay out of simulation state and traced output.
pub const WALLCLOCK_BOUNDARY: [&str; 1] = ["crates/sim/src/trace.rs"];

/// The only files where a `threads` allow comment is honored: the
/// parallel routing-table build (joins per-source chunks in source
/// order, byte-identical to the serial build) and the parameter-sweep
/// runner (order-preserving parallel map over independent runs). See
/// `docs/PERFORMANCE.md` for the determinism argument. Anywhere else
/// the allow comment is itself a violation — each simulation run stays
/// single-threaded.
pub const THREADS_BOUNDARY: [&str; 2] = [
    "crates/net/src/routing.rs",
    "crates/core/src/experiments/sweep.rs",
];

/// Rule name of the allocation-discipline escape, consumed by the
/// analyzer's alloc pass (`docs/STATIC_ANALYSIS.md`). Unlike the
/// wallclock / threads escapes, the alloc escape is **per function, not
/// per file**: a `// lint:allow(alloc) — <why this path is one-shot>`
/// comment on (or directly above) a `fn` declaration exempts that whole
/// body from the hot-path allocation inventory. It is reserved for
/// audited setup / one-shot paths — code that is *reachable* from the
/// per-event entry set but provably runs O(1) times per run segment
/// (fault-epoch rebuilds, end-of-run flushes), where a fresh allocation
/// is not a per-event cost.
pub const ALLOC_RULE: &str = "alloc";

/// True when `label` is one of the [`WALLCLOCK_BOUNDARY`] files.
pub fn in_wallclock_boundary(label: &str) -> bool {
    let norm = label.replace('\\', "/");
    WALLCLOCK_BOUNDARY.iter().any(|b| norm.ends_with(b))
}

/// True when `label` is one of the [`THREADS_BOUNDARY`] files.
pub fn in_threads_boundary(label: &str) -> bool {
    let norm = label.replace('\\', "/");
    THREADS_BOUNDARY.iter().any(|b| norm.ends_with(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundary_membership_is_suffix_based_and_separator_agnostic() {
        assert!(in_wallclock_boundary("/abs/path/crates/sim/src/trace.rs"));
        assert!(in_wallclock_boundary("crates\\sim\\src\\trace.rs"));
        assert!(!in_wallclock_boundary("crates/sim/src/engine.rs"));
        assert!(in_threads_boundary("crates/net/src/routing.rs"));
        assert!(in_threads_boundary("crates/core/src/experiments/sweep.rs"));
        assert!(!in_threads_boundary("crates/gnutella/src/sim.rs"));
    }

    #[test]
    fn boundaries_are_disjoint() {
        // A file audited for wall-clock reads is not thereby audited for
        // threading, and vice versa.
        for w in WALLCLOCK_BOUNDARY {
            assert!(!in_threads_boundary(w));
        }
        for t in THREADS_BOUNDARY {
            assert!(!in_wallclock_boundary(t));
        }
    }
}
