//! The determinism lint: a token-level static-analysis pass over every
//! workspace `.rs` file.
//!
//! The simulator's contract is that a run is a pure function of its
//! configuration and seed (see `docs/DETERMINISM.md`). Five classes of
//! code break that contract silently, so they are banned mechanically:
//!
//! | rule        | bans                                                        |
//! |-------------|-------------------------------------------------------------|
//! | `hashmap`   | `HashMap`/`HashSet` in non-test sim-path code (iteration    |
//! |             | order is per-process random; use `BTreeMap`/`BTreeSet` or   |
//! |             | `uap_sim::detmap::{DetMap, DetSet}`)                        |
//! | `wallclock` | `Instant::now`, `SystemTime`, `thread_rng`, `rand::random`  |
//! |             | (wall clocks and ambient randomness; use `SimTime`/`SimRng`)|
//! | `unwrap`    | `.unwrap()` / `.expect(` / `panic!` in library code         |
//! |             | (non-test, non-bin) without an allow comment                |
//! | `floatsum`  | f64 accumulation over unordered containers:                 |
//! |             | `.values()…sum()` chains, or `.iter()…sum()` in files that  |
//! |             | also mention `HashMap`/`HashSet` (float addition is not     |
//! |             | associative, so the random order changes the total)         |
//! | `threads`   | `thread::scope` / `thread::spawn` (scheduling order is      |
//! |             | nondeterministic; fork-join parallelism is only audited in  |
//! |             | the routing-build and sweep boundaries, where results are   |
//! |             | joined in input order)                                      |
//!
//! Escape hatch: a `// lint:allow(<rule>)` comment on the same line or
//! the line directly above suppresses that rule there. On a multi-line
//! chained expression this means the allow binds to the line of the
//! `.unwrap()` / `.expect(` itself (or the line directly above it), not
//! to the line the statement starts on — the justification must sit next
//! to the site it blesses. Exception: a `wallclock` allow is honored
//! only inside the documented trace-sink boundary
//! ([`WALLCLOCK_BOUNDARY`], the `uap_sim::WallTimer` home), and a
//! `threads` allow only inside files carrying a
//! [`crate::boundaries::PARALLEL_REGIONS`] manifest entry (the parallel
//! routing-table build/repair and the experiment sweep runner — the
//! audited deterministic fork-join sites); both lists live in
//! [`crate::boundaries`], shared with the call-graph analyzer
//! ([`crate::analyze`]) so each audited boundary is declared exactly
//! once. Anywhere else the allow comment is
//! itself reported, so wall-clock readings and ad-hoc threading cannot
//! quietly spread past the audited sites. The scanner is
//! deliberately token-level (`syn` is unavailable offline): comments,
//! strings and char literals are stripped first so the rules only ever
//! match real code tokens, and `#[cfg(test)]` module bodies are excluded
//! by brace matching.

use crate::boundaries::{
    in_threads_boundary, in_wallclock_boundary, threads_boundary_files, WALLCLOCK_BOUNDARY,
};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The rule identifiers accepted by `lint:allow(...)`.
const RULES: [&str; 5] = ["hashmap", "wallclock", "unwrap", "floatsum", "threads"];

/// One diagnostic, rendered as `path:line: rule(<name>): message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Path relative to the workspace root.
    pub path: String,
    /// 1-indexed line.
    pub line: usize,
    /// Rule identifier (one of [`RULES`]).
    pub rule: &'static str,
    /// Human-readable explanation with the suggested fix.
    pub msg: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: rule({}): {}",
            self.path, self.line, self.rule, self.msg
        )
    }
}

/// What kind of file is being scanned; decides which rules apply.
#[derive(Clone, Copy, Debug)]
pub struct FileKind {
    /// Whole file is test code (`tests/` integration dirs): rules
    /// `hashmap`, `unwrap` and `floatsum` are off, `wallclock` stays on.
    pub is_test_file: bool,
    /// Binary / build-tool code (`main.rs`, `src/bin/`, the xtask crate):
    /// rule `unwrap` is off — a CLI aborting with a message is fine.
    pub is_bin: bool,
    /// Simulation-path code (the `uap-*` crates and the root `src/`):
    /// rules `hashmap` and `floatsum` apply only here.
    pub is_sim_path: bool,
}

/// Scans the workspace rooted at `root`; returns every violation found.
pub fn run(root: &Path) -> Vec<Violation> {
    let mut files: Vec<(PathBuf, FileKind)> = Vec::new();

    let crates_dir = root.join("crates");
    if let Ok(entries) = std::fs::read_dir(&crates_dir) {
        let mut crates: Vec<PathBuf> = entries
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crates.sort();
        for krate in crates {
            let is_xtask = krate.file_name().is_some_and(|n| n == "xtask");
            collect_rs(&krate.join("src"), &mut files, |p| FileKind {
                is_test_file: false,
                is_bin: is_bin_path(p),
                is_sim_path: !is_xtask,
            });
            collect_rs(&krate.join("tests"), &mut files, |_| FileKind {
                is_test_file: true,
                is_bin: false,
                is_sim_path: false,
            });
        }
    }
    collect_rs(&root.join("src"), &mut files, |p| FileKind {
        is_test_file: false,
        is_bin: is_bin_path(p),
        is_sim_path: true,
    });
    collect_rs(&root.join("tests"), &mut files, |_| FileKind {
        is_test_file: true,
        is_bin: false,
        is_sim_path: false,
    });

    let mut out = Vec::new();
    for (path, kind) in files {
        let Ok(source) = std::fs::read_to_string(&path) else {
            continue;
        };
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .into_owned();
        out.extend(scan_source(&label, &source, kind));
    }
    out
}

/// True for crate roots compiled as binaries.
fn is_bin_path(p: &Path) -> bool {
    p.file_name().is_some_and(|n| n == "main.rs") || p.components().any(|c| c.as_os_str() == "bin")
}

/// Recursively collects `.rs` files under `dir` in sorted order.
fn collect_rs(
    dir: &Path,
    out: &mut Vec<(PathBuf, FileKind)>,
    kind: impl Fn(&Path) -> FileKind + Copy,
) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for p in paths {
        if p.is_dir() {
            collect_rs(&p, out, kind);
        } else if p.extension().is_some_and(|e| e == "rs") {
            let k = kind(&p);
            out.push((p, k));
        }
    }
}

/// Per-line view of a source file after lexical stripping.
struct Line {
    /// Code with comments / string contents / char literals blanked out.
    code: String,
    /// Rules allowed by `lint:allow(...)` comments on this line.
    allows: BTreeSet<String>,
    /// True when the line is inside a `#[cfg(test)]` module body.
    in_test: bool,
}

/// Scans one file's source text. Separated from I/O so the unit tests can
/// feed synthetic sources and assert exact diagnostics.
pub fn scan_source(label: &str, source: &str, kind: FileKind) -> Vec<Violation> {
    let lines = lex(source);
    let mut out = Vec::new();

    let allowed = |lines: &[Line], i: usize, rule: &str| -> bool {
        lines[i].allows.contains(rule) || (i > 0 && lines[i - 1].allows.contains(rule))
    };

    // floatsum needs file-level context: `.iter()…sum()` is only
    // suspicious when the file actually handles unordered containers.
    let mentions_unordered = lines.iter().any(|l| {
        find_ident(&l.code, "HashMap").is_some() || find_ident(&l.code, "HashSet").is_some()
    });

    let wallclock_boundary = in_wallclock_boundary(label);
    let threads_boundary = in_threads_boundary(label);

    for (i, line) in lines.iter().enumerate() {
        let lineno = i + 1;
        let code = &line.code;
        let in_test = kind.is_test_file || line.in_test;

        if !wallclock_boundary && line.allows.contains("wallclock") {
            out.push(Violation {
                path: label.to_string(),
                line: lineno,
                rule: "wallclock",
                msg: format!(
                    "`lint:allow(wallclock)` is only valid inside the documented trace-sink \
                     boundary ({}); move the timing into uap_sim::WallTimer",
                    WALLCLOCK_BOUNDARY.join(", ")
                ),
            });
        }

        if kind.is_sim_path && !in_test && !allowed(&lines, i, "hashmap") {
            for ident in ["HashMap", "HashSet"] {
                if find_ident(code, ident).is_some() {
                    out.push(Violation {
                        path: label.to_string(),
                        line: lineno,
                        rule: "hashmap",
                        msg: format!(
                            "{ident} iterates in per-process random order; use BTree{} or \
                             uap_sim::detmap::{}",
                            &ident[4..],
                            if ident == "HashMap" {
                                "DetMap"
                            } else {
                                "DetSet"
                            },
                        ),
                    });
                }
            }
        }

        if !threads_boundary && line.allows.contains("threads") {
            out.push(Violation {
                path: label.to_string(),
                line: lineno,
                rule: "threads",
                msg: format!(
                    "`lint:allow(threads)` is only valid inside the audited fork-join \
                     boundaries ({}); keep simulation runs single-threaded",
                    threads_boundary_files().join(", ")
                ),
            });
        }

        if !(threads_boundary && allowed(&lines, i, "threads")) {
            for pat in ["thread::scope", "thread::spawn"] {
                if find_path_token(code, pat).is_some() {
                    out.push(Violation {
                        path: label.to_string(),
                        line: lineno,
                        rule: "threads",
                        msg: format!(
                            "`{pat}` outside the audited fork-join boundaries; thread \
                             scheduling is nondeterministic — keep simulation runs \
                             single-threaded, or declare a PARALLEL_REGIONS manifest \
                             entry with an order-preserving join argument"
                        ),
                    });
                }
            }
        }

        if !(wallclock_boundary && allowed(&lines, i, "wallclock")) {
            for (pat, fix) in [
                ("Instant::now", "use uap_sim::SimTime from the event loop"),
                ("SystemTime", "use uap_sim::SimTime from the event loop"),
                (
                    "thread_rng",
                    "thread the seeded uap_sim::SimRng through instead",
                ),
                (
                    "rand::random",
                    "thread the seeded uap_sim::SimRng through instead",
                ),
            ] {
                if find_path_token(code, pat).is_some() {
                    out.push(Violation {
                        path: label.to_string(),
                        line: lineno,
                        rule: "wallclock",
                        msg: format!("`{pat}` breaks seed-reproducibility; {fix}"),
                    });
                }
            }
        }

        if !in_test && !kind.is_bin && !allowed(&lines, i, "unwrap") {
            for (pat, what) in [
                (".unwrap()", "unwrap"),
                (".expect(", "expect"),
                ("panic!", "panic"),
            ] {
                let hit = if pat == "panic!" {
                    find_ident(code, "panic").is_some_and(|p| code[p..].starts_with("panic!"))
                } else {
                    code.contains(pat)
                };
                // `.expect(` and panics justified in place carry their own
                // finer-grained allow names for auditability.
                if hit && !allowed(&lines, i, what) {
                    out.push(Violation {
                        path: label.to_string(),
                        line: lineno,
                        rule: "unwrap",
                        msg: format!(
                            "`{what}` in library code; return a Result, or justify with \
                             `// lint:allow({what})`"
                        ),
                    });
                }
            }
        }

        if kind.is_sim_path && !in_test && !allowed(&lines, i, "floatsum") {
            let values_sum = chained(code, ".values()", ".sum");
            let iter_sum = mentions_unordered && chained(code, ".iter()", ".sum");
            if values_sum || iter_sum {
                out.push(Violation {
                    path: label.to_string(),
                    line: lineno,
                    rule: "floatsum",
                    msg: "float accumulation over a possibly-unordered container; collect \
                          into a Vec and sort, or use an ordered map"
                        .to_string(),
                });
            }
        }
    }
    out
}

/// True when `first` is followed (same line, any chain in between) by `then`.
fn chained(code: &str, first: &str, then: &str) -> bool {
    code.find(first)
        .is_some_and(|i| code[i + first.len()..].contains(then))
}

/// Finds `ident` at identifier boundaries; returns its byte offset.
fn find_ident(code: &str, ident: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(ident) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + ident.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + ident.len();
    }
    None
}

/// Finds a (possibly `::`-qualified) token like `Instant::now`, requiring
/// identifier boundaries on both ends.
fn find_path_token(code: &str, pat: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = code[from..].find(pat) {
        let at = from + rel;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + pat.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + pat.len();
    }
    None
}

/// Lexically strips `source` into per-line code views.
///
/// Handles line/block comments (nested), string literals, raw strings
/// (`r"…"`, `r#"…"#`, any hash depth), byte strings, char literals vs
/// lifetimes, and records `lint:allow(...)` comments. After stripping it
/// marks `#[cfg(test)] mod … { … }` bodies via brace matching.
fn lex(source: &str) -> Vec<Line> {
    let n_lines = source.lines().count().max(1);
    let mut lines: Vec<Line> = (0..n_lines)
        .map(|_| Line {
            code: String::new(),
            allows: BTreeSet::new(),
            in_test: false,
        })
        .collect();

    let bytes: Vec<char> = source.chars().collect();
    let mut i = 0;
    let mut line = 0usize;

    let push = |lines: &mut Vec<Line>, line: usize, c: char| {
        if let Some(l) = lines.get_mut(line) {
            l.code.push(c);
        }
    };

    while i < bytes.len() {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&'/') => {
                // Line comment: capture for lint:allow, then skip to EOL.
                let start = i;
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                record_allows(&text, line, &mut lines);
            }
            '/' if bytes.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == '\n' {
                        line += 1;
                        i += 1;
                    } else if bytes[i] == '/' && bytes.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == '*' && bytes.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                let text: String = bytes[start..i.min(bytes.len())].iter().collect();
                record_allows(&text, start_line, &mut lines);
            }
            '"' => {
                // String literal (plain or after b); contents blanked.
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        '\\' => {
                            // An escaped newline (line continuation) still
                            // advances the line counter, or every diagnostic
                            // after the string points one line too high.
                            if bytes.get(i + 1) == Some(&'\n') {
                                line += 1;
                            }
                            i += 2;
                        }
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                push(&mut lines, line, '"');
            }
            'r' if matches!(bytes.get(i + 1), Some(&'"') | Some(&'#')) => {
                // Raw string r"…" / r#"…"# / r##"…"## …
                let mut j = i + 1;
                let mut hashes = 0;
                while bytes.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                if bytes.get(j) == Some(&'"') {
                    i = j + 1;
                    'raw: while i < bytes.len() {
                        if bytes[i] == '\n' {
                            line += 1;
                        } else if bytes[i] == '"' {
                            let mut k = i + 1;
                            let mut seen = 0;
                            while seen < hashes && bytes.get(k) == Some(&'#') {
                                seen += 1;
                                k += 1;
                            }
                            if seen == hashes {
                                i = k;
                                break 'raw;
                            }
                        }
                        i += 1;
                    }
                    push(&mut lines, line, '"');
                } else {
                    push(&mut lines, line, 'r');
                    i += 1;
                }
            }
            '\'' => {
                // Char literal vs lifetime. A char literal closes within a
                // few chars; a lifetime is 'ident with no closing quote.
                if bytes.get(i + 1) == Some(&'\\') {
                    i += 2;
                    while i < bytes.len() && bytes[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                    push(&mut lines, line, '\'');
                } else if bytes.get(i + 2) == Some(&'\'') {
                    i += 3;
                    push(&mut lines, line, '\'');
                } else {
                    push(&mut lines, line, '\'');
                    i += 1;
                }
            }
            _ => {
                push(&mut lines, line, c);
                i += 1;
            }
        }
    }

    mark_test_regions(&mut lines);
    lines
}

/// Records every rule named in a `lint:allow(a, b)` comment onto `line`.
fn record_allows(comment: &str, line: usize, lines: &mut [Line]) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let tail = &rest[at + "lint:allow(".len()..];
        if let Some(close) = tail.find(')') {
            for rule in tail[..close].split(',') {
                let rule = rule.trim().to_string();
                // Fine-grained names (`expect`, `panic`) ride on rule
                // `unwrap`'s checks; accept them alongside RULES.
                if RULES.contains(&rule.as_str()) || rule == "expect" || rule == "panic" {
                    if let Some(l) = lines.get_mut(line) {
                        l.allows.insert(rule);
                    }
                }
            }
            rest = &tail[close..];
        } else {
            break;
        }
    }
}

/// Marks lines inside `#[cfg(test)] mod … { … }` bodies.
fn mark_test_regions(lines: &mut [Line]) {
    let joined: Vec<(usize, char)> = lines
        .iter()
        .enumerate()
        .flat_map(|(ln, l)| l.code.chars().map(move |c| (ln, c)).chain([(ln, '\n')]))
        .collect();
    let text: String = joined.iter().map(|&(_, c)| c).collect();

    let mut search_from = 0;
    while let Some(rel) = text[search_from..].find("#[cfg(test)]") {
        let attr_at = search_from + rel;
        // Find the first '{' after the attribute (the mod body opener).
        let Some(open_rel) = text[attr_at..].find('{') else {
            break;
        };
        let open = attr_at + open_rel;
        let mut depth = 0usize;
        let mut end = text.len();
        for (off, ch) in text[open..].char_indices() {
            match ch {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = open + off;
                        break;
                    }
                }
                _ => {}
            }
        }
        let start_line = joined[attr_at].0;
        let end_line = joined[end.min(joined.len() - 1)].0;
        for l in lines.iter_mut().take(end_line + 1).skip(start_line) {
            l.in_test = true;
        }
        search_from = end.min(text.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileKind = FileKind {
        is_test_file: false,
        is_bin: false,
        is_sim_path: true,
    };

    fn rules_of(vs: &[Violation]) -> Vec<&'static str> {
        vs.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn flags_hashmap_with_file_line() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["hashmap", "hashmap"]);
        assert_eq!(vs[0].line, 1);
        assert_eq!(vs[1].line, 2);
        assert_eq!(vs[0].path, "crates/sim/src/x.rs");
        // The rendered diagnostic is file:line: rule(...): …
        assert!(vs[0]
            .to_string()
            .starts_with("crates/sim/src/x.rs:1: rule(hashmap)"));
    }

    #[test]
    fn seeded_thread_rng_violation_is_reported() {
        // The acceptance scenario: a thread_rng() call seeded into
        // crates/sim must produce a non-empty diagnostic with file:line.
        let src = "fn jitter() -> u64 {\n    let mut r = rand::thread_rng();\n    r.gen()\n}\n";
        let vs = scan_source("crates/sim/src/rng.rs", src, LIB);
        assert_eq!(vs.len(), 1);
        assert_eq!((vs[0].rule, vs[0].line), ("wallclock", 2));
    }

    #[test]
    fn wallclock_tokens_flagged_even_in_tests_dir() {
        let kind = FileKind {
            is_test_file: true,
            is_bin: false,
            is_sim_path: false,
        };
        let src = "fn t() { let _ = std::time::Instant::now(); }\n";
        assert_eq!(
            rules_of(&scan_source("tests/x.rs", src, kind)),
            vec!["wallclock"]
        );
    }

    #[test]
    fn unwrap_expect_panic_in_library() {
        let src = "fn f(x: Option<u32>) -> u32 {\n    let a = x.unwrap();\n    let b = x.expect(\"b\");\n    if a + b > 9 { panic!(\"no\"); }\n    a\n}\n";
        let vs = scan_source("crates/net/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap", "unwrap", "unwrap"]);
        assert_eq!(vs.iter().map(|v| v.line).collect::<Vec<_>>(), vec![2, 3, 4]);
    }

    #[test]
    fn bins_and_test_modules_may_unwrap() {
        let bin = FileKind {
            is_test_file: false,
            is_bin: true,
            is_sim_path: true,
        };
        let src = "fn main() { std::fs::read(\"x\").unwrap(); }\n";
        assert!(scan_source("src/main.rs", src, bin).is_empty());

        let src = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { Some(3).unwrap(); let m = std::collections::HashMap::<u8, u8>::new(); drop(m); }\n}\n";
        assert!(scan_source("crates/sim/src/x.rs", src, LIB).is_empty());
    }

    #[test]
    fn code_after_test_module_is_still_checked() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { Some(3).unwrap(); }\n}\nfn after(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 5);
    }

    #[test]
    fn allow_comments_suppress_same_and_next_line() {
        let src = "use std::collections::HashMap; // lint:allow(hashmap)\n// lint:allow(hashmap)\ntype T = HashMap<u8, u8>;\n";
        assert!(scan_source("crates/sim/src/x.rs", src, LIB).is_empty());
        // …but only for the named rule.
        let src = "let x = opt.unwrap(); // lint:allow(hashmap)\n";
        assert_eq!(
            rules_of(&scan_source("crates/sim/src/x.rs", src, LIB)),
            vec!["unwrap"]
        );
    }

    #[test]
    fn expect_allow_is_fine_grained() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.expect(\"invariant: set in new()\") // lint:allow(expect)\n}\n";
        assert!(scan_source("crates/net/src/x.rs", src, LIB).is_empty());
        // an `expect` allow does not bless a bare unwrap
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap() // lint:allow(expect)\n}\n";
        assert_eq!(
            rules_of(&scan_source("crates/net/src/x.rs", src, LIB)),
            vec!["unwrap"]
        );
    }

    #[test]
    fn wallclock_allow_only_honored_in_boundary_file() {
        let src = "pub fn t() -> std::time::Instant {\n    std::time::Instant::now() // lint:allow(wallclock)\n}\n";
        // Inside the documented boundary the allow works.
        assert!(scan_source("crates/sim/src/trace.rs", src, LIB).is_empty());
        // Outside it, both the token and the misplaced allow are reported.
        let vs = scan_source("crates/net/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["wallclock", "wallclock"]);
        assert!(vs[0].msg.contains("boundary"));
    }

    #[test]
    fn threads_allow_only_honored_in_boundary_files() {
        let src = "pub fn par() {\n    std::thread::scope(|s| { let _ = s; }) // lint:allow(threads)\n}\n";
        // Inside either documented boundary the allow works.
        assert!(scan_source("crates/net/src/routing.rs", src, LIB).is_empty());
        assert!(scan_source("crates/core/src/experiments/sweep.rs", src, LIB).is_empty());
        // Outside them, both the token and the misplaced allow are reported.
        let vs = scan_source("crates/gnutella/src/sim.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["threads", "threads"]);
        assert!(vs[0].msg.contains("boundaries"));
    }

    #[test]
    fn thread_spawn_flagged_without_allow_even_in_boundary() {
        // The boundary only honors explicit allows; an unannotated spawn
        // is still reported there.
        let src = "pub fn f() { std::thread::spawn(|| {}); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/net/src/routing.rs", src, LIB)),
            vec!["threads"]
        );
        // Qualified crossbeam paths match the same suffix token.
        let src = "pub fn g() { crossbeam::thread::scope(|s| { let _ = s; }); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/core/src/lib.rs", src, LIB)),
            vec!["threads"]
        );
    }

    #[test]
    fn tokens_in_strings_and_comments_do_not_count() {
        let src = "// HashMap is banned here\nfn f() -> &'static str { \"HashMap thread_rng Instant::now .unwrap()\" }\nconst R: &str = r#\"SystemTime panic!\"#;\n";
        assert!(scan_source("crates/sim/src/x.rs", src, LIB).is_empty());
    }

    #[test]
    fn raw_string_contents_are_inert_but_code_after_them_is_not() {
        // A HashMap mention inside a raw string must not be flagged …
        let src = "const R: &str = r#\"use HashMap here \"quoted\" fine\"#;\n";
        assert!(scan_source("crates/sim/src/x.rs", src, LIB).is_empty());
        // … and a violation *after* a raw string on a later line must
        // still be reported at the correct line number.
        let src = "const R: &str = r#\"HashMap\"#;\ntype T = HashMap<u8, u8>;\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["hashmap"]);
        assert_eq!(vs[0].line, 2);
        // Hash-depth ≥ 2 and an embedded "# that must not close early.
        let src = "const R: &str = r##\"has \"# inside HashMap\"##;\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn multi_line_raw_string_keeps_line_numbers_straight() {
        let src = "const R: &str = r#\"line one HashMap\nline two SystemTime\nline three\"#;\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(
            vs[0].line, 4,
            "raw-string newlines must advance the line counter"
        );
    }

    #[test]
    fn nested_block_comments_are_stripped_completely() {
        // Rust block comments nest; the outer comment only closes after
        // the inner one does. Everything inside is inert.
        let src = "/* outer /* inner HashMap */ still comment SystemTime */\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 2);
        // A lint:allow inside a nested block comment still lands on the
        // comment's *starting* line (and the line after it).
        let src = "/* nested /* deep */ lint:allow(hashmap) */\ntype T = HashMap<u8, u8>;\n";
        assert!(scan_source("crates/sim/src/x.rs", src, LIB).is_empty());
    }

    #[test]
    fn multi_line_string_literals_keep_line_numbers_straight() {
        // Plain multi-line string: the contents (including a HashMap
        // mention) are blanked, and lines after it stay aligned.
        let src = "const S: &str = \"first HashMap\nsecond\";\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 3);
        // Regression: a backslash line-continuation inside a string used
        // to swallow the newline, shifting every later diagnostic up one
        // line (and dragging allow-comment matching with it).
        let src = "const S: &str = \"continued \\\n tail HashMap\";\nfn g(o: Option<u8>) -> u8 { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(
            vs[0].line, 3,
            "escaped newline in a string must still advance the line counter"
        );
    }

    #[test]
    fn allow_on_multi_line_chain_binds_to_the_unwrap_line() {
        // The documented contract: `lint:allow` suppresses on the line it
        // is written on and the line directly below — i.e. it must sit on
        // (or directly above) the line of the `.unwrap()` itself, not the
        // line the statement starts on.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o\n        .map(|x| x + 1)\n        .unwrap() // lint:allow(unwrap)\n}\n";
        assert!(scan_source("crates/net/src/x.rs", src, LIB).is_empty());
        // Allow on the line directly above the .unwrap() line also works.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o\n        // lint:allow(unwrap) — chain tail below\n        .unwrap()\n}\n";
        assert!(scan_source("crates/net/src/x.rs", src, LIB).is_empty());
        // An allow on the statement's *first* line does NOT bless an
        // unwrap two lines further down: the escape hatch is deliberately
        // line-scoped so a justification sits next to the site it blesses.
        let src = "fn f(o: Option<u8>) -> u8 {\n    o // lint:allow(unwrap)\n        .map(|x| x + 1)\n        .unwrap()\n}\n";
        let vs = scan_source("crates/net/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 4);
    }

    #[test]
    fn lifetimes_do_not_derail_the_lexer() {
        let src =
            "fn f<'a>(x: &'a str) -> &'a str { x }\nfn g(o: Option<char>) -> char { o.unwrap() }\n";
        let vs = scan_source("crates/sim/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["unwrap"]);
        assert_eq!(vs[0].line, 2);
    }

    #[test]
    fn floatsum_on_values_chains() {
        let src =
            "fn total(m: &std::collections::BTreeMap<u8, f64>) -> f64 {\n    m.values().sum()\n}\n";
        // .values().sum() is flagged regardless of receiver type: even on
        // ordered maps the chain is one refactor away from a HashMap.
        let vs = scan_source("crates/core/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["floatsum"]);
        // .iter().sum() only fires in files that mention unordered maps.
        let src = "fn t(v: &[f64]) -> f64 { v.iter().sum() }\n";
        assert!(scan_source("crates/core/src/x.rs", src, LIB).is_empty());
        let src = "struct S { m: HashMap<u8, f64> } // lint:allow(hashmap)\nfn t(s: &S) -> f64 { s.m.iter().map(|(_, v)| v).sum::<f64>() }\n";
        let vs = scan_source("crates/core/src/x.rs", src, LIB);
        assert_eq!(rules_of(&vs), vec!["floatsum"]);
    }

    #[test]
    fn non_sim_path_skips_container_rules_only() {
        let xtask = FileKind {
            is_test_file: false,
            is_bin: true,
            is_sim_path: false,
        };
        let src = "fn f() { let m = std::collections::HashMap::<u8, u8>::new(); drop(m); let _t = std::time::SystemTime::now(); }\n";
        assert_eq!(
            rules_of(&scan_source("crates/xtask/src/x.rs", src, xtask)),
            vec!["wallclock"]
        );
    }

    #[test]
    fn end_to_end_on_disk_scan_finds_seeded_violation() {
        // Full-pipeline self-test: write a synthetic crate tree with a
        // thread_rng call, run the directory walker, expect exactly the
        // seeded diagnostic with its file:line.
        let root = std::env::temp_dir().join(format!("xtask-lint-selftest-{}", std::process::id()));
        let src_dir = root.join("crates/sim/src");
        std::fs::create_dir_all(&src_dir).unwrap();
        std::fs::write(
            src_dir.join("lib.rs"),
            "pub fn f() -> u64 {\n    let mut r = rand::thread_rng();\n    r.gen()\n}\n",
        )
        .unwrap();
        let vs = run(&root);
        std::fs::remove_dir_all(&root).unwrap();
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].rule, "wallclock");
        assert_eq!(vs[0].line, 2);
        assert!(vs[0].path.ends_with("lib.rs"));
    }

    #[test]
    fn workspace_is_clean() {
        // The acceptance gate: the real workspace must lint clean. Uses
        // the same root resolution as the binary.
        let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        let root = manifest.parent().unwrap().parent().unwrap();
        let vs = run(root);
        assert!(
            vs.is_empty(),
            "workspace has lint violations:\n{}",
            vs.iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
