//! Workspace automation tasks (the cargo `xtask` pattern).
//!
//! ```text
//! cargo run -p xtask -- lint
//! cargo run -p xtask -- analyze [--update-baseline[=panic|alloc|cast]] [--pass=alloc|par|cast|all]
//! cargo run -p xtask -- trace summary <trace.jsonl>
//! cargo run -p xtask -- trace diff <a> <b>
//! cargo run -p xtask -- trace spans <trace.jsonl>
//! cargo run -p xtask -- trace explain <trace.jsonl> <seq>
//! cargo run -p xtask -- trace check <trace.jsonl>
//! ```
//!
//! `lint` scans every workspace `.rs` file for repo-specific determinism
//! hazards (see [`lint`] and `docs/DETERMINISM.md`) and exits non-zero
//! with `file:line` diagnostics when any are found. `analyze` goes a
//! layer deeper: it parses the workspace into a call graph and proves
//! purity / panic reachability / trace-registry agreement (see
//! [`analyze`] and `docs/STATIC_ANALYSIS.md`). `trace` summarizes
//! and compares the JSONL traces / RunReport JSON the experiment
//! binaries emit (see [`trace_cmd`] and `docs/OBSERVABILITY.md`); `diff`
//! exits 1 on the first divergence, which makes it the CI determinism
//! gate.

mod analyze;
mod boundaries;
mod lint;
mod trace_cmd;

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let violations = lint::run(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: clean");
                std::process::exit(0);
            } else {
                eprintln!(
                    "xtask lint: {} violation(s) — see docs/DETERMINISM.md for the rules \
                     and the `// lint:allow(<rule>)` escape hatch",
                    violations.len()
                );
                std::process::exit(1);
            }
        }
        Some("analyze") => analyze_main(&args[1..]),
        Some("trace") => trace_main(&args[1..]),
        _ => usage(),
    }
}

/// Wall-clock budget for a full analyzer run. Generous: the analyzer is
/// sub-second today; blowing this means it regressed by two orders of
/// magnitude.
const ANALYZE_WALL_BUDGET_SECS: f64 = 120.0;

fn analyze_main(args: &[String]) -> ! {
    let mut mode = analyze::BaselineMode::Check;
    let mut passes = analyze::PassFilter::All;
    for arg in args {
        match arg.as_str() {
            "--update-baseline" => mode = analyze::BaselineMode::Update(analyze::UpdateScope::All),
            "--update-baseline=panic" => {
                mode = analyze::BaselineMode::Update(analyze::UpdateScope::Panic)
            }
            "--update-baseline=alloc" => {
                mode = analyze::BaselineMode::Update(analyze::UpdateScope::Alloc)
            }
            "--update-baseline=cast" => {
                mode = analyze::BaselineMode::Update(analyze::UpdateScope::Cast)
            }
            "--pass=alloc" => passes = analyze::PassFilter::Alloc,
            "--pass=par" => passes = analyze::PassFilter::Par,
            "--pass=cast" => passes = analyze::PassFilter::Cast,
            "--pass=all" => passes = analyze::PassFilter::All,
            other => {
                eprintln!("xtask analyze: unknown flag `{other}`");
                usage()
            }
        }
    }
    let timer = uap_sim::WallTimer::start();
    let report = analyze::run_passes(&workspace_root(), mode, passes);
    let wall = timer.elapsed_secs();
    let clean = analyze::print_report(&report);
    let label = match passes {
        analyze::PassFilter::All => "analyze",
        analyze::PassFilter::Alloc => "analyze_alloc",
        analyze::PassFilter::Par => "analyze_par",
        analyze::PassFilter::Cast => "analyze_cast",
    };
    println!(
        "PERF {label} files={} fns={} entries={} hot_entries={} edges={} alloc_sites={} \
         spawn_sites={} cast_sites={} wall_secs={wall:.3} (budget {ANALYZE_WALL_BUDGET_SECS:.0}s)",
        report.stats.files,
        report.stats.fns,
        report.stats.entries,
        report.stats.hot_entries,
        report.stats.edges,
        report.stats.alloc_sites,
        report.stats.spawn_sites,
        report.stats.cast_sites
    );
    if wall > ANALYZE_WALL_BUDGET_SECS {
        eprintln!(
            "xtask analyze: wall time {wall:.1}s exceeded the {ANALYZE_WALL_BUDGET_SECS:.0}s budget"
        );
        std::process::exit(1);
    }
    std::process::exit(if clean { 0 } else { 1 });
}

fn trace_main(args: &[String]) -> ! {
    match args.first().map(String::as_str) {
        Some("summary") => {
            let [path] = &args[1..] else { usage() };
            let content = read_or_die(path);
            match trace_cmd::summarize(&content) {
                Ok(s) => {
                    print!("{s}");
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("xtask trace summary: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("diff") => {
            let [a, b] = &args[1..] else { usage() };
            let ca = read_or_die(a);
            let cb = read_or_die(b);
            let r = trace_cmd::diff(&ca, &cb);
            print!("{}", trace_cmd::render_diff((a, b), &r));
            match r {
                trace_cmd::DiffResult::Identical { .. } => std::process::exit(0),
                trace_cmd::DiffResult::Divergence { .. } => std::process::exit(1),
            }
        }
        Some("spans") => {
            let [path] = &args[1..] else { usage() };
            match trace_cmd::spans(&read_or_die(path)) {
                Ok(s) => {
                    print!("{s}");
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("xtask trace spans: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("explain") => {
            let [path, seq] = &args[1..] else { usage() };
            let Ok(seq) = seq.parse::<u64>() else {
                eprintln!("xtask trace explain: `{seq}` is not a seq number");
                usage()
            };
            match trace_cmd::explain(&read_or_die(path), seq) {
                Ok(s) => {
                    print!("{s}");
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("xtask trace explain: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("check") => {
            let [path] = &args[1..] else { usage() };
            match trace_cmd::check(&read_or_die(path)) {
                Ok(s) => {
                    print!("{s}");
                    std::process::exit(0);
                }
                Err(e) => {
                    eprintln!("xtask trace check: {path}: causal-integrity violation(s):\n{e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}

fn read_or_die(path: &str) -> String {
    match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("xtask trace: cannot read {path}: {e}");
            std::process::exit(1);
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: cargo run -p xtask -- lint\n       \
         cargo run -p xtask -- analyze [--update-baseline[=panic|alloc|cast]] [--pass=alloc|par|cast|all]\n       \
         cargo run -p xtask -- trace summary <trace.jsonl>\n       \
         cargo run -p xtask -- trace diff <a> <b>\n       \
         cargo run -p xtask -- trace spans <trace.jsonl>\n       \
         cargo run -p xtask -- trace explain <trace.jsonl> <seq>\n       \
         cargo run -p xtask -- trace check <trace.jsonl>"
    );
    std::process::exit(2);
}

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest) // lint:allow(unwrap) — unreachable: the manifest always has two ancestors
}
