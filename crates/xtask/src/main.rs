//! Workspace automation tasks (the cargo `xtask` pattern).
//!
//! The only task today is the determinism lint:
//!
//! ```text
//! cargo run -p xtask -- lint
//! ```
//!
//! which scans every workspace `.rs` file for repo-specific determinism
//! hazards (see [`lint`] and `docs/DETERMINISM.md`) and exits non-zero
//! with `file:line` diagnostics when any are found.

mod lint;

use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = workspace_root();
            let violations = lint::run(&root);
            for v in &violations {
                eprintln!("{v}");
            }
            if violations.is_empty() {
                eprintln!("xtask lint: clean");
                std::process::exit(0);
            } else {
                eprintln!(
                    "xtask lint: {} violation(s) — see docs/DETERMINISM.md for the rules \
                     and the `// lint:allow(<rule>)` escape hatch",
                    violations.len()
                );
                std::process::exit(1);
            }
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            std::process::exit(2);
        }
    }
}

/// The workspace root, two levels up from this crate's manifest.
fn workspace_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(|p| p.parent())
        .map(PathBuf::from)
        .unwrap_or(manifest) // lint:allow(unwrap) — unreachable: the manifest always has two ancestors
}
