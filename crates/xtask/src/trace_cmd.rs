//! `cargo run -p xtask -- trace <summary|diff>` — the trace toolbox.
//!
//! * `trace summary <file.jsonl>` — per-component / per-kind event
//!   counts, the simulated time span, and event rates for one JSONL
//!   trace written by a `--trace` run (or by
//!   `uap_sim::Tracer::write_jsonl`).
//!
//! * `trace diff <a> <b>` — line-by-line comparison of two trace or
//!   `RunReport` JSON files that reports the **first divergence**. Lines
//!   whose key starts with `"wall` (the RunReport's `wall_secs`) are
//!   exempt on both sides — wall time is the one value allowed to differ
//!   between same-seed runs. When the diverging lines parse as trace
//!   events, the diagnostic names each side's seq / sim-time /
//!   component / kind, which localizes a determinism break to the exact
//!   event where two runs' histories fork (see `docs/OBSERVABILITY.md`).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use uap_sim::trace::parse_jsonl_line;

/// Outcome of a [`diff`] comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffResult {
    /// Every compared line matched.
    Identical {
        /// Lines compared.
        lines: usize,
        /// Wall-clock lines exempted from comparison.
        skipped: usize,
    },
    /// The files differ; `line` is 1-indexed.
    Divergence {
        /// First diverging line number.
        line: usize,
        /// That line in the first file (None = file ended).
        a: Option<String>,
        /// That line in the second file (None = file ended).
        b: Option<String>,
    },
}

/// True for report lines exempt from determinism comparison: the leaf
/// key starts with `wall` (e.g. `  "wall_secs": 1.23`).
fn is_wall_line(line: &str) -> bool {
    line.trim_start().starts_with("\"wall")
}

/// Compares two files line by line; see the module docs for the wall
/// exemption. Returns the first divergence, if any.
pub fn diff(a: &str, b: &str) -> DiffResult {
    let la: Vec<&str> = a.lines().collect();
    let lb: Vec<&str> = b.lines().collect();
    let mut skipped = 0usize;
    for i in 0..la.len().max(lb.len()) {
        match (la.get(i), lb.get(i)) {
            (Some(&x), Some(&y)) => {
                if is_wall_line(x) && is_wall_line(y) {
                    skipped += 1;
                    continue;
                }
                if x != y {
                    return DiffResult::Divergence {
                        line: i + 1,
                        a: Some(x.to_owned()),
                        b: Some(y.to_owned()),
                    };
                }
            }
            (x, y) => {
                return DiffResult::Divergence {
                    line: i + 1,
                    a: x.map(|s| (*s).to_owned()),
                    b: y.map(|s| (*s).to_owned()),
                }
            }
        }
    }
    DiffResult::Identical {
        lines: la.len(),
        skipped,
    }
}

/// Renders a [`DiffResult`] for the terminal, decoding trace-event lines
/// into `seq/t/component/kind` context when they parse.
pub fn render_diff(labels: (&str, &str), r: &DiffResult) -> String {
    let mut out = String::new();
    match r {
        DiffResult::Identical { lines, skipped } => {
            let _ = writeln!(
                out,
                "identical: {lines} line(s) compared, {skipped} wall-clock line(s) exempt"
            );
        }
        DiffResult::Divergence { line, a, b } => {
            let _ = writeln!(out, "first divergence at line {line}:");
            for (label, side) in [(labels.0, a), (labels.1, b)] {
                match side {
                    None => {
                        let _ = writeln!(out, "  {label}: <end of file>");
                    }
                    Some(text) => {
                        let _ = writeln!(out, "  {label}: {text}");
                        if let Ok(ev) = parse_jsonl_line(text) {
                            let _ = writeln!(
                                out,
                                "    = seq {} at t={}us, component `{}`, kind `{}`",
                                ev.seq,
                                ev.t.as_micros(),
                                ev.component,
                                ev.kind
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Summarizes a JSONL trace: totals, sim-time span, and per-component /
/// per-kind counts. Errors on the first malformed line.
pub fn summarize(content: &str) -> Result<String, String> {
    let mut total = 0u64;
    let mut by_component: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_kind: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        total += 1;
        let t = ev.t.as_micros();
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        *by_component.entry(ev.component.clone()).or_insert(0) += 1;
        *by_kind.entry((ev.component, ev.kind)).or_insert(0) += 1;
    }
    let mut out = String::new();
    if total == 0 {
        let _ = writeln!(out, "empty trace (0 events)");
        return Ok(out);
    }
    let span_us = t_max.saturating_sub(t_min);
    let _ = writeln!(
        out,
        "{total} event(s) over {:.3} simulated second(s) (t = {t_min}us .. {t_max}us)",
        span_us as f64 / 1e6
    );
    if span_us > 0 {
        let _ = writeln!(
            out,
            "rate: {:.1} events per simulated second",
            total as f64 / (span_us as f64 / 1e6)
        );
    }
    let _ = writeln!(out, "by component:");
    for (c, n) in &by_component {
        let _ = writeln!(out, "  {c:<12} {n}");
    }
    let _ = writeln!(out, "by kind:");
    let mut kinds: Vec<(&(String, String), &u64)> = by_kind.iter().collect();
    kinds.sort_by(|x, y| y.1.cmp(x.1).then_with(|| x.0.cmp(y.0)));
    for ((c, k), n) in kinds {
        let _ = writeln!(out, "  {:<28} {n}", format!("{c}/{k}"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_sim::{SimTime, TraceLevel, Tracer};

    fn sample_trace() -> String {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        t.emit(
            SimTime::from_secs(1),
            "net",
            TraceLevel::Info,
            "transfer",
            |f| {
                f.u64("bytes", 100);
            },
        );
        t.emit(
            SimTime::from_secs(2),
            "net",
            TraceLevel::Debug,
            "transfer",
            |f| {
                f.u64("bytes", 200);
            },
        );
        t.emit(
            SimTime::from_secs(3),
            "gnutella",
            TraceLevel::Info,
            "join",
            |f| {
                f.u64("host", 7);
            },
        );
        t.to_jsonl()
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = sample_trace();
        assert_eq!(
            diff(&a, &a),
            DiffResult::Identical {
                lines: 3,
                skipped: 0
            }
        );
    }

    #[test]
    fn divergence_reports_first_line_with_event_context() {
        let a = sample_trace();
        let b = a.replacen("\"bytes\":200", "\"bytes\":999", 1);
        let r = diff(&a, &b);
        let DiffResult::Divergence { line, .. } = &r else {
            panic!("expected divergence");
        };
        assert_eq!(*line, 2);
        let rendered = render_diff(("a.jsonl", "b.jsonl"), &r);
        assert!(rendered.contains("first divergence at line 2"));
        assert!(rendered.contains("component `net`, kind `transfer`"));
    }

    #[test]
    fn truncated_file_diverges_at_the_missing_line() {
        let a = sample_trace();
        let b: String = a.lines().take(2).map(|l| format!("{l}\n")).collect();
        let r = diff(&a, &b);
        assert_eq!(
            r,
            DiffResult::Divergence {
                line: 3,
                a: Some(a.lines().nth(2).map(str::to_owned).expect("3 lines")),
                b: None,
            }
        );
        assert!(render_diff(("a", "b"), &r).contains("<end of file>"));
    }

    #[test]
    fn wall_lines_are_exempt_on_both_sides() {
        let a = "{\n  \"seed\": 1,\n  \"wall_secs\": 1.5\n}\n";
        let b = "{\n  \"seed\": 1,\n  \"wall_secs\": 9.9\n}\n";
        assert_eq!(
            diff(a, b),
            DiffResult::Identical {
                lines: 4,
                skipped: 1
            }
        );
        // A wall line against a non-wall line is still a divergence.
        let c = "{\n  \"seed\": 2,\n  \"wall_secs\": 1.5\n}\n";
        assert!(matches!(diff(a, c), DiffResult::Divergence { line: 2, .. }));
    }

    #[test]
    fn summary_counts_components_and_kinds() {
        let s = summarize(&sample_trace()).expect("valid trace");
        assert!(s.contains("3 event(s)"));
        assert!(s.contains("net          2"));
        assert!(s.contains("gnutella     1"));
        assert!(s.contains("net/transfer"));
        assert!(s.contains("2.000 simulated second(s)"));
    }

    #[test]
    fn summary_rejects_malformed_lines() {
        let err = summarize("not json\n").expect_err("must fail");
        assert!(err.starts_with("line 1:"));
    }

    #[test]
    fn empty_trace_summarizes() {
        assert!(summarize("").expect("ok").contains("empty trace"));
    }
}
