//! `cargo run -p xtask -- trace <summary|diff|spans|explain|check>` — the
//! trace toolbox.
//!
//! * `trace summary <file.jsonl>` — per-component / per-kind event
//!   counts, the simulated time span, and event rates for one JSONL
//!   trace written by a `--trace` run (or by
//!   `uap_sim::Tracer::write_jsonl`). Traces truncated by a ring sink
//!   (first retained `seq` > 0) are flagged, with the evicted count.
//!
//! * `trace diff <a> <b>` — line-by-line comparison of two trace or
//!   `RunReport` JSON files that reports the **first divergence**. Lines
//!   whose key starts with `"wall` (the RunReport's `wall_secs`) are
//!   exempt on both sides — wall time is the one value allowed to differ
//!   between same-seed runs. When the diverging lines parse as trace
//!   events, the diagnostic names each side's seq / sim-time /
//!   component / kind, which localizes a determinism break to the exact
//!   event where two runs' histories fork (see `docs/OBSERVABILITY.md`).
//!
//! * `trace spans <file.jsonl>` — per-span-kind duration statistics
//!   (count, p50/p95/p99, max) over the causal spans in the trace, plus
//!   a critical-path breakdown per `experiment/phase` segment: which
//!   span kind the phase's modeled time went to.
//!
//! * `trace explain <file.jsonl> <seq>` — walks the `cs` cause links
//!   from the given event back to its root and prints the whole chain
//!   (e.g. download ← retry ← fault epoch).
//!
//! * `trace check <file.jsonl>` — causal-integrity gate: every cause
//!   references an earlier seq that exists in the trace, span ids are
//!   opened before use, and span.open/span.close are balanced. Ring
//!   truncation downgrades the existence checks (the evicted prefix may
//!   legitimately hold the opens), but ordering is always enforced.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use uap_sim::trace::parse_jsonl_line;
use uap_sim::{TraceEvent, Value};

/// Outcome of a [`diff`] comparison.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiffResult {
    /// Every compared line matched.
    Identical {
        /// Lines compared.
        lines: usize,
        /// Wall-clock lines exempted from comparison.
        skipped: usize,
    },
    /// The files differ; `line` is 1-indexed.
    Divergence {
        /// First diverging line number.
        line: usize,
        /// That line in the first file (None = file ended).
        a: Option<String>,
        /// That line in the second file (None = file ended).
        b: Option<String>,
    },
}

/// True for report lines exempt from determinism comparison: the leaf
/// key starts with `wall` (e.g. `  "wall_secs": 1.23`).
fn is_wall_line(line: &str) -> bool {
    line.trim_start().starts_with("\"wall")
}

/// Compares two files line by line; see the module docs for the wall
/// exemption. Returns the first divergence, if any.
pub fn diff(a: &str, b: &str) -> DiffResult {
    let la: Vec<&str> = a.lines().collect();
    let lb: Vec<&str> = b.lines().collect();
    let mut skipped = 0usize;
    for i in 0..la.len().max(lb.len()) {
        match (la.get(i), lb.get(i)) {
            (Some(&x), Some(&y)) => {
                if is_wall_line(x) && is_wall_line(y) {
                    skipped += 1;
                    continue;
                }
                if x != y {
                    return DiffResult::Divergence {
                        line: i + 1,
                        a: Some(x.to_owned()),
                        b: Some(y.to_owned()),
                    };
                }
            }
            (x, y) => {
                return DiffResult::Divergence {
                    line: i + 1,
                    a: x.map(|s| (*s).to_owned()),
                    b: y.map(|s| (*s).to_owned()),
                }
            }
        }
    }
    DiffResult::Identical {
        lines: la.len(),
        skipped,
    }
}

/// Renders a [`DiffResult`] for the terminal, decoding trace-event lines
/// into `seq/t/component/kind` context when they parse.
pub fn render_diff(labels: (&str, &str), r: &DiffResult) -> String {
    let mut out = String::new();
    match r {
        DiffResult::Identical { lines, skipped } => {
            let _ = writeln!(
                out,
                "identical: {lines} line(s) compared, {skipped} wall-clock line(s) exempt"
            );
        }
        DiffResult::Divergence { line, a, b } => {
            let _ = writeln!(out, "first divergence at line {line}:");
            for (label, side) in [(labels.0, a), (labels.1, b)] {
                match side {
                    None => {
                        let _ = writeln!(out, "  {label}: <end of file>");
                    }
                    Some(text) => {
                        let _ = writeln!(out, "  {label}: {text}");
                        if let Ok(ev) = parse_jsonl_line(text) {
                            let _ = writeln!(
                                out,
                                "    = seq {} at t={}us, component `{}`, kind `{}`",
                                ev.seq,
                                ev.t.as_micros(),
                                ev.component,
                                ev.kind
                            );
                        }
                    }
                }
            }
        }
    }
    out
}

/// Summarizes a JSONL trace: totals, sim-time span, per-component /
/// per-kind counts, and ring-sink truncation (a first retained `seq`
/// above 0 means that many earlier events were evicted; interior seq
/// gaps mean the file itself lost lines). Errors on the first malformed
/// line.
pub fn summarize(content: &str) -> Result<String, String> {
    let mut total = 0u64;
    let mut by_component: BTreeMap<String, u64> = BTreeMap::new();
    let mut by_kind: BTreeMap<(String, String), u64> = BTreeMap::new();
    let mut t_min = u64::MAX;
    let mut t_max = 0u64;
    let mut seq_min = u64::MAX;
    let mut seq_max = 0u64;
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let ev = parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        total += 1;
        let t = ev.t.as_micros();
        t_min = t_min.min(t);
        t_max = t_max.max(t);
        seq_min = seq_min.min(ev.seq);
        seq_max = seq_max.max(ev.seq);
        *by_component.entry(ev.component.clone()).or_insert(0) += 1;
        *by_kind.entry((ev.component, ev.kind)).or_insert(0) += 1;
    }
    let mut out = String::new();
    if total == 0 {
        let _ = writeln!(out, "empty trace (0 events)");
        return Ok(out);
    }
    let span_us = t_max.saturating_sub(t_min);
    let _ = writeln!(
        out,
        "{total} event(s) over {:.3} simulated second(s) (t = {t_min}us .. {t_max}us)",
        span_us as f64 / 1e6
    );
    if span_us > 0 {
        let _ = writeln!(
            out,
            "rate: {:.1} events per simulated second",
            total as f64 / (span_us as f64 / 1e6)
        );
    }
    if seq_min > 0 {
        let _ = writeln!(
            out,
            "TRUNCATED: first retained seq is {seq_min} — {seq_min} earlier event(s) were \
             dropped (ring-sink eviction)"
        );
    }
    let retained_range = seq_max - seq_min + 1;
    if retained_range != total {
        let _ = writeln!(
            out,
            "WARNING: {} seq gap(s) inside the trace (expected contiguous {seq_min}..{seq_max})",
            retained_range - total
        );
    }
    let _ = writeln!(out, "by component:");
    for (c, n) in &by_component {
        let _ = writeln!(out, "  {c:<12} {n}");
    }
    let _ = writeln!(out, "by kind:");
    let mut kinds: Vec<(&(String, String), &u64)> = by_kind.iter().collect();
    kinds.sort_by(|x, y| y.1.cmp(x.1).then_with(|| x.0.cmp(y.0)));
    for ((c, k), n) in kinds {
        let _ = writeln!(out, "  {:<28} {n}", format!("{c}/{k}"));
    }
    Ok(out)
}

/// Parses every line of a JSONL trace (blank lines skipped), failing on
/// the first malformed line.
fn parse_trace(content: &str) -> Result<Vec<TraceEvent>, String> {
    let mut evs = Vec::new();
    for (i, line) in content.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        evs.push(parse_jsonl_line(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(evs)
}

fn field_u64(ev: &TraceEvent, key: &str) -> Option<u64> {
    ev.fields.iter().find_map(|(k, v)| match v {
        Value::U64(n) if k == key => Some(*n),
        _ => None,
    })
}

fn field_str<'a>(ev: &'a TraceEvent, key: &str) -> Option<&'a str> {
    ev.fields.iter().find_map(|(k, v)| match v {
        Value::Str(s) if k == key => Some(s.as_str()),
        _ => None,
    })
}

/// Nearest-rank quantile of an ascending-sorted, non-empty slice.
fn quantile(sorted: &[u64], q: f64) -> u64 {
    let n = sorted.len();
    let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[rank - 1]
}

/// Per-span-kind duration statistics plus a per-phase critical-path
/// breakdown. A span's duration is the `dur_us` field on its
/// `span.close` when present (synchronous drivers close at the open's
/// sim time and report modeled latency explicitly), else the sim-time
/// delta between close and open. Spans are attributed to the
/// `experiment/phase` segment they were **opened** in.
pub fn spans(content: &str) -> Result<String, String> {
    let evs = parse_trace(content)?;
    struct Open {
        label: String,
        t_us: u64,
        phase: usize,
    }
    let mut phases: Vec<String> = vec!["(no phase)".to_string()];
    let mut cur_phase = 0usize;
    let mut open: BTreeMap<u64, Open> = BTreeMap::new();
    // label -> sorted-later durations; (phase idx, label) -> (total, count)
    let mut durations: BTreeMap<String, Vec<u64>> = BTreeMap::new();
    let mut phase_totals: BTreeMap<(usize, String), (u64, u64)> = BTreeMap::new();
    let mut unmatched_closes = 0u64;
    // Spans whose modeled duration carries an unroutable-path latency
    // sentinel (the overlays encode "no route under the current fault
    // state" as u64::MAX/4 microseconds). One such span would dominate
    // every sum, so they are excluded from the statistics and counted.
    const SENTINEL_DUR_US: u64 = u64::MAX / 8;
    let mut sentinel_spans: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &evs {
        if ev.component == "experiment" && ev.kind == "phase" {
            phases.push(field_str(ev, "name").unwrap_or("?").to_string());
            cur_phase = phases.len() - 1;
            continue;
        }
        match ev.kind.as_str() {
            "span.open" => {
                let Some(id) = ev.span else { continue };
                let kind = field_str(ev, "span_kind").unwrap_or("?");
                open.insert(
                    id,
                    Open {
                        label: format!("{}/{kind}", ev.component),
                        t_us: ev.t.as_micros(),
                        phase: cur_phase,
                    },
                );
            }
            "span.close" => {
                let matched = ev.span.and_then(|id| open.remove(&id));
                let Some(o) = matched else {
                    unmatched_closes += 1;
                    continue;
                };
                let dur = field_u64(ev, "dur_us")
                    .unwrap_or_else(|| ev.t.as_micros().saturating_sub(o.t_us));
                if dur >= SENTINEL_DUR_US {
                    *sentinel_spans.entry(o.label.clone()).or_default() += 1;
                    continue;
                }
                durations.entry(o.label.clone()).or_default().push(dur);
                let slot = phase_totals.entry((o.phase, o.label)).or_insert((0, 0));
                slot.0 += dur;
                slot.1 += 1;
            }
            _ => {}
        }
    }
    let mut out = String::new();
    if durations.is_empty() && open.is_empty() && sentinel_spans.is_empty() {
        let _ = writeln!(out, "no spans in trace ({} event(s))", evs.len());
        return Ok(out);
    }
    let _ = writeln!(out, "span durations (modeled time, us):");
    let _ = writeln!(
        out,
        "  {:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
        "span kind", "count", "p50", "p95", "p99", "max"
    );
    for (label, durs) in &mut durations {
        durs.sort_unstable();
        let _ = writeln!(
            out,
            "  {label:<24} {:>7} {:>12} {:>12} {:>12} {:>12}",
            durs.len(),
            quantile(durs, 0.50),
            quantile(durs, 0.95),
            quantile(durs, 0.99),
            durs.last().copied().unwrap_or(0)
        );
    }
    let _ = writeln!(out, "critical path by phase (total modeled span time):");
    for (i, phase) in phases.iter().enumerate() {
        let mut rows: Vec<(&String, u64, u64)> = phase_totals
            .iter()
            .filter(|((p, _), _)| *p == i)
            .map(|((_, label), &(total, count))| (label, total, count))
            .collect();
        if rows.is_empty() {
            continue;
        }
        rows.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
        let phase_sum: u64 = rows.iter().map(|r| r.1).sum();
        let _ = writeln!(out, "  {phase}:");
        for (label, total, count) in rows {
            let pct = if phase_sum > 0 {
                total as f64 / phase_sum as f64 * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "    {label:<22} {total:>14}us  {pct:>5.1}%  ({count} span(s))"
            );
        }
    }
    for (label, n) in &sentinel_spans {
        let _ = writeln!(
            out,
            "{n} {label} span(s) excluded: sentinel duration (no route under \
             the active fault state)"
        );
    }
    if !open.is_empty() {
        let _ = writeln!(out, "{} span(s) still open at end of trace", open.len());
    }
    if unmatched_closes > 0 {
        let _ = writeln!(
            out,
            "{unmatched_closes} span.close event(s) without a matching open \
             (truncated trace?)"
        );
    }
    Ok(out)
}

/// Walks the `cs` cause links from `seq` back to the chain's root and
/// renders the chain root-first.
pub fn explain(content: &str, seq: u64) -> Result<String, String> {
    let evs = parse_trace(content)?;
    let by_seq: BTreeMap<u64, &TraceEvent> = evs.iter().map(|e| (e.seq, e)).collect();
    let start = by_seq
        .get(&seq)
        .ok_or_else(|| format!("seq {seq} not found in trace ({} event(s))", evs.len()))?;
    let mut chain: Vec<&TraceEvent> = vec![start];
    let mut missing_cause: Option<u64> = None;
    let mut cur = *start;
    while let Some(cs) = cur.cause {
        if chain.len() > evs.len() {
            return Err(format!(
                "cause chain from seq {seq} does not terminate (cycle?)"
            ));
        }
        match by_seq.get(&cs) {
            Some(parent) => {
                chain.push(parent);
                cur = parent;
            }
            None => {
                missing_cause = Some(cs);
                break;
            }
        }
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "causal chain for seq {seq}: {} link(s) to root",
        chain.len() - 1
    );
    if let Some(cs) = missing_cause {
        let _ = writeln!(
            out,
            "  … cause seq {cs} is not in the trace (ring truncation?) — chain incomplete"
        );
    }
    for (depth, ev) in chain.iter().rev().enumerate() {
        let indent = "   ".repeat(depth);
        let arrow = if depth == 0 { "root:" } else { "└─" };
        let span = ev.span.map(|s| format!("  span={s}")).unwrap_or_default();
        let fields: Vec<String> = ev
            .fields
            .iter()
            .map(|(k, v)| {
                let mut s = format!("{k}=");
                v.write_json_value(&mut s);
                s
            })
            .collect();
        let _ = writeln!(
            out,
            "  {indent}{arrow} seq {} t={}us {}/{}{span}  {{{}}}",
            ev.seq,
            ev.t.as_micros(),
            ev.component,
            ev.kind,
            fields.join(", ")
        );
    }
    Ok(out)
}

/// Causal-integrity check: every `cs` must reference an earlier seq that
/// exists in the trace, every span-bearing event must belong to an
/// opened span, and span.open/span.close must balance per span id. A
/// ring-truncated trace (first retained seq > 0) downgrades existence
/// and orphan checks — the evicted prefix may legitimately hold the
/// opens — but cause-precedes-effect ordering is always enforced.
/// Returns a summary on success and the violation list on failure.
pub fn check(content: &str) -> Result<String, String> {
    let evs = parse_trace(content)?;
    if evs.is_empty() {
        return Ok("causal integrity ok: empty trace\n".to_string());
    }
    let seqs: BTreeSet<u64> = evs.iter().map(|e| e.seq).collect();
    let min_seq = *seqs.first().expect("non-empty"); // lint:allow(expect)
    let truncated = min_seq > 0;
    let mut problems: Vec<String> = Vec::new();
    let mut cause_links = 0u64;
    let mut opened: BTreeMap<u64, u64> = BTreeMap::new(); // span id -> open count
    let mut closed: BTreeMap<u64, u64> = BTreeMap::new();
    let mut span_events = 0u64;
    for ev in &evs {
        if let Some(cs) = ev.cause {
            cause_links += 1;
            if cs >= ev.seq {
                problems.push(format!(
                    "seq {}: cause {cs} does not precede the event",
                    ev.seq
                ));
            } else if cs >= min_seq && !seqs.contains(&cs) {
                problems.push(format!("seq {}: cause {cs} is not in the trace", ev.seq));
            }
        }
        match ev.kind.as_str() {
            "span.open" => match ev.span {
                Some(id) => *opened.entry(id).or_insert(0) += 1,
                None => problems.push(format!("seq {}: span.open without a span id", ev.seq)),
            },
            "span.close" => match ev.span {
                Some(id) => *closed.entry(id).or_insert(0) += 1,
                None => problems.push(format!("seq {}: span.close without a span id", ev.seq)),
            },
            _ => {
                if let Some(id) = ev.span {
                    span_events += 1;
                    if !truncated && !opened.contains_key(&id) {
                        problems.push(format!(
                            "seq {}: event in span {id} before any span.open",
                            ev.seq
                        ));
                    }
                }
            }
        }
    }
    for (id, n) in &opened {
        if *n > 1 {
            problems.push(format!("span {id}: opened {n} times"));
        }
        match closed.get(id).copied().unwrap_or(0) {
            1 => {}
            0 => problems.push(format!("span {id}: opened but never closed")),
            n => problems.push(format!("span {id}: closed {n} times")),
        }
    }
    if !truncated {
        for id in closed.keys() {
            if !opened.contains_key(id) {
                problems.push(format!("span {id}: closed but never opened"));
            }
        }
    }
    if problems.is_empty() {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "causal integrity ok: {} event(s), {cause_links} cause link(s), {} span(s) \
             balanced, {span_events} span-member event(s){}",
            evs.len(),
            opened.len(),
            if truncated {
                " [ring-truncated: existence checks downgraded]"
            } else {
                ""
            }
        );
        Ok(out)
    } else {
        Err(problems.join("\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use uap_sim::{SimTime, TraceLevel, Tracer};

    fn sample_trace() -> String {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        t.emit(
            SimTime::from_secs(1),
            "net",
            TraceLevel::Info,
            "transfer",
            |f| {
                f.u64("bytes", 100);
            },
        );
        t.emit(
            SimTime::from_secs(2),
            "net",
            TraceLevel::Debug,
            "transfer",
            |f| {
                f.u64("bytes", 200);
            },
        );
        t.emit(
            SimTime::from_secs(3),
            "gnutella",
            TraceLevel::Info,
            "join",
            |f| {
                f.u64("host", 7);
            },
        );
        t.to_jsonl()
    }

    #[test]
    fn identical_traces_diff_clean() {
        let a = sample_trace();
        assert_eq!(
            diff(&a, &a),
            DiffResult::Identical {
                lines: 3,
                skipped: 0
            }
        );
    }

    #[test]
    fn divergence_reports_first_line_with_event_context() {
        let a = sample_trace();
        let b = a.replacen("\"bytes\":200", "\"bytes\":999", 1);
        let r = diff(&a, &b);
        let DiffResult::Divergence { line, .. } = &r else {
            panic!("expected divergence");
        };
        assert_eq!(*line, 2);
        let rendered = render_diff(("a.jsonl", "b.jsonl"), &r);
        assert!(rendered.contains("first divergence at line 2"));
        assert!(rendered.contains("component `net`, kind `transfer`"));
    }

    #[test]
    fn truncated_file_diverges_at_the_missing_line() {
        let a = sample_trace();
        let b: String = a.lines().take(2).map(|l| format!("{l}\n")).collect();
        let r = diff(&a, &b);
        assert_eq!(
            r,
            DiffResult::Divergence {
                line: 3,
                a: Some(a.lines().nth(2).map(str::to_owned).expect("3 lines")),
                b: None,
            }
        );
        assert!(render_diff(("a", "b"), &r).contains("<end of file>"));
    }

    #[test]
    fn wall_lines_are_exempt_on_both_sides() {
        let a = "{\n  \"seed\": 1,\n  \"wall_secs\": 1.5\n}\n";
        let b = "{\n  \"seed\": 1,\n  \"wall_secs\": 9.9\n}\n";
        assert_eq!(
            diff(a, b),
            DiffResult::Identical {
                lines: 4,
                skipped: 1
            }
        );
        // A wall line against a non-wall line is still a divergence.
        let c = "{\n  \"seed\": 2,\n  \"wall_secs\": 1.5\n}\n";
        assert!(matches!(diff(a, c), DiffResult::Divergence { line: 2, .. }));
    }

    #[test]
    fn summary_counts_components_and_kinds() {
        let s = summarize(&sample_trace()).expect("valid trace");
        assert!(s.contains("3 event(s)"));
        assert!(s.contains("net          2"));
        assert!(s.contains("gnutella     1"));
        assert!(s.contains("net/transfer"));
        assert!(s.contains("2.000 simulated second(s)"));
    }

    #[test]
    fn summary_rejects_malformed_lines() {
        let err = summarize("not json\n").expect_err("must fail");
        assert!(err.starts_with("line 1:"));
    }

    #[test]
    fn empty_trace_summarizes() {
        assert!(summarize("").expect("ok").contains("empty trace"));
    }

    /// A trace with one complete causal chain: fault.epoch (root) →
    /// span.open → retry (caused by the fault) → download (caused by the
    /// retry) → span.close carrying `dur_us`.
    fn chained_trace() -> String {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        let fault = t.emit(
            SimTime::from_secs(1),
            "n",
            TraceLevel::Info,
            "fault.epoch",
            |f| {
                f.u64("links_down", 3);
            },
        );
        let span = t.alloc_span();
        t.set_span(Some(span));
        t.emit(
            SimTime::from_secs(2),
            "g",
            TraceLevel::Debug,
            "span.open",
            |f| {
                f.str("span_kind", "query");
            },
        );
        t.set_cause(fault);
        let retry = t.emit(
            SimTime::from_secs(2),
            "g",
            TraceLevel::Debug,
            "download.retry",
            |f| {
                f.u64("attempt", 1);
            },
        );
        t.set_cause(retry);
        t.emit(
            SimTime::from_secs(2),
            "g",
            TraceLevel::Debug,
            "download",
            |f| {
                f.u64("bytes", 9);
            },
        );
        t.emit(
            SimTime::from_secs(2),
            "g",
            TraceLevel::Debug,
            "span.close",
            |f| {
                f.str("span_kind", "query").u64("dur_us", 1500);
            },
        );
        t.clear_provenance();
        t.to_jsonl()
    }

    #[test]
    fn spans_reports_durations_and_phase_breakdown() {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        t.emit(
            SimTime::ZERO,
            "experiment",
            TraceLevel::Info,
            "phase",
            |f| {
                f.str("name", "alpha");
            },
        );
        for (i, dur) in [100u64, 200, 300].iter().enumerate() {
            let span = t.alloc_span();
            t.set_span(Some(span));
            t.emit(
                SimTime::from_secs(i as u64),
                "g",
                TraceLevel::Debug,
                "span.open",
                |f| {
                    f.str("span_kind", "query");
                },
            );
            let d = *dur;
            t.emit(
                SimTime::from_secs(i as u64),
                "g",
                TraceLevel::Debug,
                "span.close",
                move |f| {
                    f.str("span_kind", "query").u64("dur_us", d);
                },
            );
            t.clear_provenance();
        }
        // One sim-time-delta span with no dur_us field.
        let span = t.alloc_span();
        t.set_span(Some(span));
        t.emit(
            SimTime::from_secs(10),
            "b",
            TraceLevel::Debug,
            "span.open",
            |f| {
                f.str("span_kind", "peer");
            },
        );
        t.emit(
            SimTime::from_secs(14),
            "b",
            TraceLevel::Debug,
            "span.close",
            |f| {
                f.str("span_kind", "peer").bool("done", true);
            },
        );
        t.clear_provenance();
        let s = spans(&t.to_jsonl()).expect("valid trace");
        assert!(s.contains("g/query"), "{s}");
        assert!(s.contains("b/peer"), "{s}");
        // p50 of [100, 200, 300] (nearest rank) = 200; max = 300.
        assert!(s.contains("200"), "{s}");
        assert!(s.contains("300"), "{s}");
        // The peer span's duration is the close-open sim-time delta (4s).
        assert!(s.contains("4000000"), "{s}");
        assert!(s.contains("alpha:"), "{s}");
    }

    #[test]
    fn spans_excludes_sentinel_durations_from_the_stats() {
        let mut t = Tracer::buffered(TraceLevel::Debug);
        for dur in [1000u64, u64::MAX / 2] {
            let span = t.alloc_span();
            t.set_span(Some(span));
            t.emit(SimTime::ZERO, "g", TraceLevel::Debug, "span.open", |f| {
                f.str("span_kind", "query");
            });
            t.emit(
                SimTime::ZERO,
                "g",
                TraceLevel::Debug,
                "span.close",
                move |f| {
                    f.str("span_kind", "query").u64("dur_us", dur);
                },
            );
            t.clear_provenance();
        }
        let s = spans(&t.to_jsonl()).expect("valid trace");
        // The finite span is reported; the sentinel one is counted, not
        // folded into quantiles/max where it would dominate everything.
        assert!(s.contains("g/query"), "{s}");
        assert!(!s.contains(&(u64::MAX / 2).to_string()), "{s}");
        assert!(
            s.contains("1 g/query span(s) excluded: sentinel duration"),
            "{s}"
        );
    }

    #[test]
    fn spans_handles_spanless_traces() {
        let s = spans(&sample_trace()).expect("ok");
        assert!(s.contains("no spans in trace"));
    }

    #[test]
    fn explain_walks_the_chain_to_its_root() {
        let trace = chained_trace();
        // The `download` event is seq 3 (0-based emission order).
        let s = explain(&trace, 3).expect("chain resolves");
        assert!(
            s.contains("causal chain for seq 3: 2 link(s) to root"),
            "{s}"
        );
        let root_pos = s.find("n/fault.epoch").expect("root in output");
        let retry_pos = s.find("g/download.retry").expect("retry in output");
        let dl_pos = s.find("g/download ").expect("download in output");
        assert!(
            root_pos < retry_pos && retry_pos < dl_pos,
            "root-first order:\n{s}"
        );
        assert!(s.contains("span=0"), "{s}");
    }

    #[test]
    fn explain_rejects_unknown_seq() {
        let err = explain(&chained_trace(), 999).expect_err("must fail");
        assert!(err.contains("seq 999 not found"));
    }

    #[test]
    fn check_passes_a_complete_chain_and_catches_violations() {
        let trace = chained_trace();
        let ok = check(&trace).expect("chain is sound");
        assert!(ok.contains("causal integrity ok"), "{ok}");
        assert!(ok.contains("3 cause link(s)"), "{ok}");
        assert!(ok.contains("1 span(s) balanced"), "{ok}");
        // A forward cause reference must fail.
        let bad = trace.replacen("\"cs\":0", "\"cs\":99", 1);
        let err = check(&bad).expect_err("forward cause");
        assert!(err.contains("does not precede"), "{err}");
        // Removing the span.close line must fail the balance check.
        let unbalanced: String = trace
            .lines()
            .filter(|l| !l.contains("span.close"))
            .map(|l| format!("{l}\n"))
            .collect();
        let err = check(&unbalanced).expect_err("unclosed span");
        assert!(err.contains("opened but never closed"), "{err}");
    }

    #[test]
    fn check_downgrades_existence_checks_on_ring_truncation() {
        // Drop the first two lines (fault.epoch root and span.open) and
        // keep seqs intact — exactly what a ring sink eviction produces.
        let truncated: String = chained_trace()
            .lines()
            .skip(2)
            .map(|l| format!("{l}\n"))
            .collect();
        let ok = check(&truncated).expect("truncation is not a violation");
        assert!(ok.contains("ring-truncated"), "{ok}");
    }

    #[test]
    fn summary_flags_ring_truncation_and_seq_gaps() {
        let full = chained_trace();
        assert!(!summarize(&full).expect("ok").contains("TRUNCATED"));
        let truncated: String = full.lines().skip(2).map(|l| format!("{l}\n")).collect();
        let s = summarize(&truncated).expect("ok");
        assert!(s.contains("TRUNCATED: first retained seq is 2"), "{s}");
        // An interior gap (a lost line) is a different warning.
        let gappy: String = full
            .lines()
            .enumerate()
            .filter(|(i, _)| *i != 2)
            .map(|(_, l)| format!("{l}\n"))
            .collect();
        let s = summarize(&gappy).expect("ok");
        assert!(s.contains("WARNING: 1 seq gap(s)"), "{s}");
    }
}
