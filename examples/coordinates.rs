//! Network coordinates: the paper's Figure-4 ICS worked example, then
//! Vivaldi and ICS racing on a simulated underlay.
//!
//! ```sh
//! cargo run --release --example coordinates
//! ```

use underlay_p2p::coords::VivaldiConfig;
use underlay_p2p::core::experiments::e03_coordinates::example_table;
use underlay_p2p::info::{IcsService, VivaldiService};
use underlay_p2p::net::{
    HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use underlay_p2p::sim::SimRng;

fn build_underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 3,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(200),
        UnderlayConfig {
            jitter: 0.05,
            ..Default::default()
        },
        &mut rng,
    )
}

fn main() {
    // Part 1: the published worked example, byte for byte.
    println!("{}", example_table().render());

    // Part 2: both predictors on a live underlay.
    let underlay = build_underlay(23);
    let mut rng = SimRng::new(23);

    let ics = IcsService::build(&underlay, 12, 5, &mut rng);
    let q_ics = ics.quality(&underlay, 1_000, &mut rng);

    let mut vivaldi = VivaldiService::new(underlay.n_hosts(), VivaldiConfig::default());
    vivaldi.converge(&underlay, 50, 4, &mut rng);
    let q_viv = vivaldi.quality(&underlay, 1_000, &mut rng);

    println!("== prediction accuracy on a 200-host underlay ==");
    println!(
        "ICS (12 beacons, 5 dims):  median rel. err {:.3}, p90 {:.3}",
        q_ics.median_rel_err, q_ics.p90_rel_err
    );
    println!(
        "Vivaldi (50 gossip rounds): median rel. err {:.3}, p90 {:.3}",
        q_viv.median_rel_err, q_viv.p90_rel_err
    );

    // Part 3: use a prediction: who is closest to host 0?
    let from = HostId(0);
    let mut best = (HostId(1), f64::INFINITY);
    for i in 1..underlay.n_hosts() as u32 {
        let p = vivaldi.predict_us(from, HostId(i));
        if p < best.1 {
            best = (HostId(i), p);
        }
    }
    let truth = underlay
        .rtt_us(from, best.0)
        .expect("hosts share the underlay") as f64;
    println!(
        "\nVivaldi says {} is closest to {} (predicted {:.1} ms; true RTT {:.1} ms)",
        best.0,
        from,
        best.1 / 1_000.0,
        truth / 1_000.0
    );
    println!("…and not a single extra ping was sent to find out.");
}
