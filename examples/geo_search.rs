//! Location-constrained search on a Globase.KOM-style geolocation overlay
//! — the "new application areas" of the paper's Table 2 (find peers near a
//! point of interest, emergency-service style).
//!
//! ```sh
//! cargo run --release --example geo_search
//! ```

use underlay_p2p::core::geo_overlay::{GeoOverlay, Rect};
use underlay_p2p::info::{GeoLocator, GeoService, GeoSource};
use underlay_p2p::net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use underlay_p2p::sim::SimRng;

fn build_underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 3,
        tier3_per_tier2: 4,
        tier2_peering_prob: 0.2,
        tier3_peering_prob: 0.2,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(500),
        UnderlayConfig::default(),
        &mut rng,
    )
}

fn main() {
    let underlay = build_underlay(31);
    let mut rng = SimRng::new(31);
    let world = Rect::new(0.0, 0.0, 5_000.0, 5_000.0);

    println!("== geolocation overlay (Globase.KOM-style zone tree) ==\n");
    for source in [GeoSource::Gps, GeoSource::IpMapping] {
        let mut locator = GeoService::new(&underlay, source);
        let mut overlay = GeoOverlay::new(world, 8);
        for h in underlay.hosts.ids() {
            overlay.join(h, locator.locate(h, &mut rng));
        }
        // "Find peers within ~300 km of the incident" — a box centered on
        // a real peer so the region is populated.
        let incident = underlay.host(underlay_p2p::net::HostId(0)).geo;
        let q = Rect::new(
            incident.x_km - 300.0,
            incident.y_km - 300.0,
            incident.x_km + 300.0,
            incident.y_km + 300.0,
        );
        let out = overlay.search(&q);
        let truth: Vec<_> = underlay
            .hosts
            .ids()
            .filter(|&h| q.contains(&underlay.host(h).geo))
            .collect();
        let found_true = out
            .found
            .iter()
            .filter(|h| q.contains(&underlay.host(**h).geo))
            .count();
        println!("registration source: {}", locator.name());
        println!(
            "  query answered with {} messages over {} zones (flooding would need {})",
            out.messages,
            out.zones_visited,
            underlay.n_hosts()
        );
        println!(
            "  reported {} peers; truly in range {}/{} (recall {:.0}%)\n",
            out.found.len(),
            found_true,
            truth.len(),
            if truth.is_empty() {
                100.0
            } else {
                100.0 * found_true as f64 / truth.len() as f64
            }
        );
    }
    println!("GPS registrations give exact recall at a tiny message cost;");
    println!("IP-mapping registrations land peers in the wrong zones — the");
    println!("accuracy gap §3.3 warns about, made measurable.");
}
