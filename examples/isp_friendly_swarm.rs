//! An ISP-friendly BitTorrent swarm: biased neighbor selection at the
//! tracker (Bindal et al.) and what it does to the ISPs' transit bills
//! under the paper's Figure-2 cost model.
//!
//! ```sh
//! cargo run --release --example isp_friendly_swarm
//! ```

use underlay_p2p::bittorrent::{run_swarm, SwarmConfig, TrackerPolicy};
use underlay_p2p::net::cost::{bill_all, total_transit_usd};
use underlay_p2p::net::{
    CostParams, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use underlay_p2p::sim::{SimRng, SimTime};

fn build_underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.4,
        tier3_peering_prob: 0.4,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(160),
        UnderlayConfig::default(),
        &mut rng,
    )
}

fn main() {
    println!("== ISP-friendly swarm ==\n");
    let tariffs = CostParams::default();
    println!(
        "tariffs: ${}/Mbps transit (95th percentile), ${} flat per peering port\n",
        tariffs.transit_usd_per_mbps, tariffs.peering_flat_usd
    );
    for (label, tracker) in [
        ("vanilla tracker (random peers)", TrackerPolicy::Random),
        (
            "BNS tracker (16 internal + 4 external)",
            TrackerPolicy::Bns {
                internal: 16,
                external: 4,
            },
        ),
        ("cost-aware tracker", TrackerPolicy::CostAware),
    ] {
        let cfg = SwarmConfig {
            n_leechers: 120,
            n_seeds: 8,
            n_pieces: 64,
            tracker,
            ..Default::default()
        };
        let (report, underlay) = run_swarm(build_underlay(11), cfg, 11);
        let horizon = SimTime::from_secs(10).mul(report.rounds as u64);
        let bills = bill_all(&underlay.graph, &underlay.traffic, &tariffs, horizon);
        println!("--- {label} ---");
        println!(
            "  completed {}/{} leechers, mean {:.0}s / median {:.0}s",
            report.completed,
            report.leechers,
            report.mean_completion_secs(),
            report.median_completion_secs()
        );
        println!(
            "  payload locality: {:.1}% of bytes stayed inside an AS",
            100.0 * report.intra_as_fraction
        );
        println!(
            "  summed ISP transit bill: ${:.0}/month-equivalent\n",
            total_transit_usd(&bills)
        );
    }
    println!("BNS keeps the swarm almost as fast while most payload bytes");
    println!("never touch a billed transit link — the win-win the paper's");
    println!("§5 'benefits and impacts' section describes.");
}
