//! Quickstart: build an Internet-like underlay, run unbiased vs
//! oracle-biased Gnutella on it, and see what underlay awareness buys.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use underlay_p2p::core::graphstats::OverlayStats;
use underlay_p2p::gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use underlay_p2p::net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use underlay_p2p::sim::{SimRng, SimTime};

fn build_underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    // A small Internet: 2 global carriers, 4 regionals, 16 local ISPs.
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 4,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    // 300 residential peers attached to the local ISPs.
    Underlay::build(
        graph,
        &PopulationSpec::leaf(300),
        UnderlayConfig::default(),
        &mut rng,
    )
}

fn main() {
    println!("== underlay-p2p quickstart ==\n");
    for (label, selection) in [
        ("unbiased (random neighbors)", NeighborSelection::Random),
        (
            "oracle-biased (ISP ranks the hostcache)",
            NeighborSelection::OracleBiased { list_size: 1000 },
        ),
    ] {
        let cfg = GnutellaConfig {
            selection,
            oracle_at_file_exchange: false,
            duration: SimTime::from_mins(10),
            ..Default::default()
        };
        let (report, world) = run_experiment(build_underlay(7), cfg, 7);
        let stats = OverlayStats::compute(&world.underlay, &report.edges);
        let (intra, peering, transit) = world.underlay.traffic.totals();
        println!("--- {label} ---");
        println!("{report}");
        println!(
            "  overlay: {} edges, {:.1}% intra-AS, modularity {:.2}",
            stats.edges,
            100.0 * stats.intra_fraction(),
            stats.as_modularity
        );
        println!(
            "  download traffic: {:.1} MB intra-AS, {:.1} MB over peering, {:.1} MB over transit\n",
            intra as f64 / 1e6,
            peering as f64 / 1e6,
            transit as f64 / 1e6
        );
    }
    println!("The oracle run should show fewer messages, a clustered overlay,");
    println!("and traffic shifted off the (billed) transit links — the core");
    println!("claims of the surveyed ISP-location techniques.");
}
