//! Resource-aware superpeer selection with a SkyEye.KOM-style information
//! management overlay (§2.3/§3.4): promote the right peers to ultrapeer
//! and watch search performance move.
//!
//! ```sh
//! cargo run --release --example supernode_selection
//! ```

use underlay_p2p::gnutella::{run_experiment, GnutellaConfig, NeighborSelection, RoleAssignment};
use underlay_p2p::info::provider::ResourceDirectory;
use underlay_p2p::info::SkyEyeTree;
use underlay_p2p::net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
use underlay_p2p::sim::{SimRng, SimTime};

fn build_underlay(seed: u64) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(240),
        UnderlayConfig::default(),
        &mut rng,
    )
}

fn main() {
    // Part 1: the information management overlay itself.
    let underlay = build_underlay(41);
    let members: Vec<_> = underlay.hosts.ids().collect();
    let mut tree = SkyEyeTree::build(&underlay, members, 4, 16);
    tree.run_round();
    println!("== SkyEye-style resource directory ==");
    println!(
        "aggregated {} peers in one round ({} messages); global stats: mean capacity {:.2}, {:.0} GB shared",
        tree.stats().members,
        tree.overhead_messages(),
        tree.stats().mean_capacity,
        tree.stats().total_storage_gb
    );
    println!("top-5 capacity peers (supernode candidates):");
    for h in tree.top_k(5) {
        let host = underlay.host(h);
        println!(
            "  {h}: {:.0} kbps up, cpu {:.1}, online {:.0}% -> score {:.2}",
            host.up_kbps,
            host.cpu,
            100.0 * host.online_fraction,
            host.capacity_score()
        );
    }

    // Part 2: what role assignment does to the overlay under churn.
    println!("\n== ultrapeer promotion policies under churn ==");
    for (label, roles) in [
        ("every 3rd peer (blind)", RoleAssignment::EveryKth(3)),
        (
            "top 1/3 by capacity (resource-aware)",
            RoleAssignment::CapacityTopFraction(1.0 / 3.0),
        ),
    ] {
        let cfg = GnutellaConfig {
            selection: NeighborSelection::Random,
            roles,
            churn: underlay_p2p::sim::ChurnConfig::exponential(600.0),
            duration: SimTime::from_mins(15),
            ..Default::default()
        };
        let (report, _) = run_experiment(build_underlay(41), cfg, 41);
        println!(
            "  {label}: search success {:.1}%, mean first hit {:.0} ms, mean download {:.1}s",
            100.0 * report.success_ratio(),
            report.mean_query_delay_ms,
            report.mean_download_secs
        );
    }
    println!("\nResource-aware promotion puts stable, well-provisioned peers in");
    println!("the backbone — 'different roles in the network are taken by");
    println!("appropriate nodes', as §2.3 puts it.");
}
