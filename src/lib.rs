//! # underlay-p2p
//!
//! A Rust reproduction of *Underlay Awareness in P2P Systems: Techniques
//! and Challenges* (Abboud, Kovacevic, Graffi, Pussep, Steinmetz — IPDPS
//! 2009): the paper's taxonomy implemented as a working framework, with an
//! AS-level underlay simulator, three overlay substrates, every collection
//! technique of its Figure 3, every usage strategy of its §4, and a
//! harness regenerating each of its tables and figures.
//!
//! This crate is the façade: it re-exports the workspace members under
//! one roof so examples and downstream users can depend on a single
//! package.
//!
//! ```
//! use underlay_p2p::net::{PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig};
//! use underlay_p2p::sim::SimRng;
//!
//! let mut rng = SimRng::new(42);
//! let graph = TopologySpec::new(TopologyKind::Hierarchical {
//!     tier1: 2,
//!     tier2_per_tier1: 2,
//!     tier3_per_tier2: 2,
//!     tier2_peering_prob: 0.3,
//!     tier3_peering_prob: 0.3,
//! })
//! .build(&mut rng);
//! let underlay = Underlay::build(graph, &PopulationSpec::leaf(50), UnderlayConfig::default(), &mut rng);
//! assert_eq!(underlay.n_hosts(), 50);
//! ```

#![forbid(unsafe_code)]

pub use uap_bittorrent as bittorrent;
pub use uap_coords as coords;
pub use uap_core as core;
pub use uap_gnutella as gnutella;
pub use uap_info as info;
pub use uap_kademlia as kademlia;
pub use uap_net as net;
pub use uap_sim as sim;
