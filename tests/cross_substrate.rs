//! Integration across overlay substrates sharing one underlay model:
//! the same network shape serves Gnutella, Kademlia and BitTorrent, and
//! the locality mechanisms agree in direction.

use underlay_p2p::bittorrent::{run_swarm, SwarmConfig, TrackerPolicy};
use underlay_p2p::gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use underlay_p2p::kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode};
use underlay_p2p::net::{
    HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use underlay_p2p::sim::{SimRng, SimTime};

fn build_underlay(seed: u64, n: usize) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(n),
        UnderlayConfig::default(),
        &mut rng,
    )
}

/// The headline claim of the whole survey, across all three substrates:
/// underlay awareness raises traffic locality in each of them.
#[test]
fn locality_improves_in_every_substrate() {
    // Gnutella.
    // Full §4 pipeline: oracle at bootstrap AND at file-exchange time
    // (bootstrap-only biasing moves download locality very little when the
    // provider is still picked at random — exactly what E6 measures).
    let gn = |sel, oracle_exchange| {
        let cfg = GnutellaConfig {
            selection: sel,
            oracle_at_file_exchange: oracle_exchange,
            duration: SimTime::from_mins(8),
            ..Default::default()
        };
        let (_, world) = run_experiment(build_underlay(21, 180), cfg, 21);
        world.underlay.traffic.locality_fraction()
    };
    let g_rand = gn(NeighborSelection::Random, false);
    let g_oracle = gn(NeighborSelection::OracleBiased { list_size: 1000 }, true);
    assert!(
        g_oracle > g_rand,
        "gnutella locality {g_oracle} !> {g_rand}"
    );

    // Kademlia.
    let kd = |mode| {
        let mut rng = SimRng::new(22);
        let mut net = DhtNetwork::build(
            build_underlay(22, 128),
            DhtConfig {
                proximity: mode,
                ..Default::default()
            },
            &mut rng,
        );
        net.underlay.reset_traffic();
        for i in 0..40u32 {
            let k = Key::random(&mut rng);
            net.lookup(HostId(i % 128), &k, &mut rng);
        }
        net.underlay.traffic.locality_fraction()
    };
    let k_plain = kd(ProximityMode::None);
    let k_prox = kd(ProximityMode::PnsPr);
    assert!(k_prox > k_plain, "kademlia locality {k_prox} !> {k_plain}");

    // BitTorrent.
    let bt = |tracker| {
        let cfg = SwarmConfig {
            n_leechers: 60,
            n_seeds: 4,
            n_pieces: 32,
            tracker,
            ..Default::default()
        };
        let (report, _) = run_swarm(build_underlay(23, 100), cfg, 23);
        report.intra_as_fraction
    };
    let b_rand = bt(TrackerPolicy::Random);
    let b_bns = bt(TrackerPolicy::Bns {
        internal: 16,
        external: 4,
    });
    assert!(b_bns > b_rand, "bittorrent locality {b_bns} !> {b_rand}");
}

/// The DHT can serve as the rendezvous for the file-sharing overlay:
/// store Gnutella hostcache seeds under a well-known key and fetch them
/// from another node.
#[test]
fn dht_as_bootstrap_rendezvous() {
    let mut rng = SimRng::new(31);
    let mut net = DhtNetwork::build(build_underlay(31, 96), DhtConfig::default(), &mut rng);
    let key = Key::hash_of(b"gnutella-bootstrap-v1");
    let (_, written) = net.store(HostId(3), &key, 0xB007, &mut rng);
    assert!(written >= 4);
    for probe in [10u32, 50, 90] {
        let (_, got) = net.retrieve(HostId(probe), &key, &mut rng);
        assert_eq!(got, Some(0xB007), "probe from {probe}");
    }
}

/// Underlay traffic accounting composes across substrates: running two
/// different workloads on one underlay accumulates into one ledger.
#[test]
fn shared_ledger_accumulates() {
    let mut u = build_underlay(41, 80);
    let before = u.traffic.transfers();
    assert_eq!(before, 0);
    // Manual transfers standing in for two applications.
    let a = HostId(0);
    let b = HostId(40);
    u.account_transfer(SimTime::ZERO, a, b, 1_000);
    u.account_transfer(SimTime::from_secs(1), b, a, 2_000);
    assert_eq!(u.traffic.transfers(), 2);
    let (intra, peering, transit) = u.traffic.totals();
    assert!(intra + peering + transit >= 3_000);
}
