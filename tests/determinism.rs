//! Reproducibility: every experiment harness is a pure function of its
//! parameters and seed. Two invocations must agree to the last digit —
//! this is what makes the EXPERIMENTS.md numbers regenerable.

use underlay_p2p::core::experiments::{
    e01_hierarchy, e02_cost, e04_messages, e05_clustering, e09_kademlia,
};

#[test]
fn e01_census_is_deterministic() {
    let p = e01_hierarchy::Params::quick(3);
    let a = e01_hierarchy::run(&p);
    let b = e01_hierarchy::run(&p);
    assert_eq!(a.table.render(), b.table.render());
}

#[test]
fn e02_cost_is_deterministic() {
    let a = e02_cost::run(&e02_cost::Params::full());
    let b = e02_cost::run(&e02_cost::Params::full());
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn e04_messages_is_deterministic() {
    let mut p = e04_messages::Params::quick(5);
    p.duration = underlay_p2p::sim::SimTime::from_mins(4);
    let a = e04_messages::run(&p);
    let b = e04_messages::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn e05_clustering_is_deterministic() {
    let mut p = e05_clustering::Params::quick(6);
    p.duration = underlay_p2p::sim::SimTime::from_mins(3);
    let a = e05_clustering::run(&p);
    let b = e05_clustering::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
    assert_eq!(a.snapshots[0].edges, b.snapshots[0].edges);
}

#[test]
fn e09_kademlia_is_deterministic() {
    let mut p = e09_kademlia::Params::quick(7);
    p.lookups = 30;
    let a = e09_kademlia::run(&p);
    let b = e09_kademlia::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn different_seeds_give_different_runs() {
    let mut p1 = e04_messages::Params::quick(100);
    let mut p2 = e04_messages::Params::quick(101);
    p1.duration = underlay_p2p::sim::SimTime::from_mins(4);
    p2.duration = underlay_p2p::sim::SimTime::from_mins(4);
    let a = e04_messages::run(&p1);
    let b = e04_messages::run(&p2);
    assert_ne!(a.table.to_csv(), b.table.to_csv());
}
