//! Reproducibility: every experiment harness is a pure function of its
//! parameters and seed. Two invocations must agree to the last digit —
//! this is what makes the EXPERIMENTS.md numbers regenerable.

use std::fmt::Write as _;
use underlay_p2p::bittorrent::{run_swarm, SwarmConfig, TrackerPolicy};
use underlay_p2p::core::experiments::{
    e01_hierarchy, e02_cost, e04_messages, e05_clustering, e09_kademlia,
};
use underlay_p2p::gnutella::{run_experiment, GnutellaConfig, NeighborSelection};
use underlay_p2p::kademlia::{DhtConfig, DhtNetwork, Key, ProximityMode};
use underlay_p2p::net::{
    HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use underlay_p2p::sim::{SimRng, SimTime};

#[test]
fn e01_census_is_deterministic() {
    let p = e01_hierarchy::Params::quick(3);
    let a = e01_hierarchy::run(&p);
    let b = e01_hierarchy::run(&p);
    assert_eq!(a.table.render(), b.table.render());
}

#[test]
fn e02_cost_is_deterministic() {
    let a = e02_cost::run(&e02_cost::Params::full());
    let b = e02_cost::run(&e02_cost::Params::full());
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn e04_messages_is_deterministic() {
    let mut p = e04_messages::Params::quick(5);
    p.duration = underlay_p2p::sim::SimTime::from_mins(4);
    let a = e04_messages::run(&p);
    let b = e04_messages::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

#[test]
fn e05_clustering_is_deterministic() {
    let mut p = e05_clustering::Params::quick(6);
    p.duration = underlay_p2p::sim::SimTime::from_mins(3);
    let a = e05_clustering::run(&p);
    let b = e05_clustering::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
    assert_eq!(a.snapshots[0].edges, b.snapshots[0].edges);
}

#[test]
fn e09_kademlia_is_deterministic() {
    let mut p = e09_kademlia::Params::quick(7);
    p.lookups = 30;
    let a = e09_kademlia::run(&p);
    let b = e09_kademlia::run(&p);
    assert_eq!(a.table.to_csv(), b.table.to_csv());
}

fn build_underlay(seed: u64, n: usize) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(n),
        UnderlayConfig::default(),
        &mut rng,
    )
}

/// Renders a float so the comparison is bit-exact, not display-rounded.
fn f(v: f64) -> String {
    format!("{v:?}/{:016x}", v.to_bits())
}

/// Runs all three overlay substrates from one master seed and serialises
/// every metric they produce — counters verbatim, floats by bit pattern —
/// into one report string. Any nondeterminism anywhere in the stack
/// (iteration order, RNG draw order, float accumulation order) shows up
/// as a byte difference between two renderings.
fn cross_substrate_report(seed: u64) -> String {
    let mut out = String::new();

    // Gnutella: full §4 pipeline on its own underlay.
    let cfg = GnutellaConfig {
        selection: NeighborSelection::OracleBiased { list_size: 1000 },
        oracle_at_file_exchange: true,
        duration: SimTime::from_mins(5),
        ..Default::default()
    };
    let (gr, world) = run_experiment(build_underlay(seed, 120), cfg, seed);
    let _ = writeln!(
        out,
        "gnutella ping={} pong={} query={} hit={} issued={} ok={} dl={} dl_intra={} qdelay={} dsecs={} locality={}",
        gr.ping_msgs,
        gr.pong_msgs,
        gr.query_msgs,
        gr.queryhit_msgs,
        gr.queries_issued,
        gr.queries_successful,
        gr.downloads,
        gr.downloads_intra_as,
        f(gr.mean_query_delay_ms),
        f(gr.mean_download_secs),
        f(world.underlay.traffic.locality_fraction()),
    );

    // Kademlia: a lookup workload over a PNS+PR table.
    let mut rng = SimRng::new(seed ^ 0xD17);
    let mut net = DhtNetwork::build(
        build_underlay(seed ^ 0xD17, 96),
        DhtConfig {
            proximity: ProximityMode::PnsPr,
            ..Default::default()
        },
        &mut rng,
    );
    net.underlay.reset_traffic();
    let (mut rpcs, mut inter, mut hops, mut rounds, mut lat) = (0u64, 0u64, 0u64, 0u32, 0u64);
    for i in 0..25u32 {
        let k = Key::random(&mut rng);
        let o = net.lookup(HostId(i % 96), &k, &mut rng);
        rpcs += o.rpcs;
        inter += o.inter_as_rpcs;
        hops += o.as_hops_sum;
        rounds += o.rounds;
        lat += o.latency_us;
    }
    let (ki, kp, kt) = net.underlay.traffic.totals();
    let _ = writeln!(
        out,
        "kademlia rpcs={rpcs} inter={inter} hops={hops} rounds={rounds} lat_us={lat} bytes={ki}/{kp}/{kt} locality={}",
        f(net.underlay.traffic.locality_fraction()),
    );

    // BitTorrent: a BNS-trackered swarm.
    let cfg = SwarmConfig {
        n_leechers: 40,
        n_seeds: 3,
        n_pieces: 24,
        tracker: TrackerPolicy::Bns {
            internal: 12,
            external: 4,
        },
        ..Default::default()
    };
    let (br, u) = run_swarm(build_underlay(seed ^ 0xB17, 70), cfg, seed ^ 0xB17);
    let (bi, bp, bt) = u.traffic.totals();
    let _ = writeln!(
        out,
        "bittorrent completed={}/{} rounds={} payload={} announces={} intra={} mean={} median={} bytes={bi}/{bp}/{bt} times={}",
        br.completed,
        br.leechers,
        br.rounds,
        br.payload_bytes,
        br.announces,
        f(br.intra_as_fraction),
        f(br.mean_completion_secs()),
        f(br.median_completion_secs()),
        br.completion_secs.iter().map(|&t| f(t)).collect::<Vec<_>>().join(","),
    );
    out
}

/// The tentpole acceptance case: one seed drives all three substrates
/// twice, and the two metric reports must be byte-identical.
#[test]
fn cross_substrate_workloads_are_deterministic() {
    let a = cross_substrate_report(9);
    let b = cross_substrate_report(9);
    assert_eq!(a, b, "cross-substrate reports diverged");
    // And the report actually contains every substrate.
    for sub in ["gnutella", "kademlia", "bittorrent"] {
        assert!(a.contains(sub), "report missing {sub} section:\n{a}");
    }
}

#[test]
fn cross_substrate_report_is_seed_sensitive() {
    assert_ne!(cross_substrate_report(9), cross_substrate_report(10));
}

#[test]
fn different_seeds_give_different_runs() {
    let mut p1 = e04_messages::Params::quick(100);
    let mut p2 = e04_messages::Params::quick(101);
    p1.duration = underlay_p2p::sim::SimTime::from_mins(4);
    p2.duration = underlay_p2p::sim::SimTime::from_mins(4);
    let a = e04_messages::run(&p1);
    let b = e04_messages::run(&p2);
    assert_ne!(a.table.to_csv(), b.table.to_csv());
}
