//! End-to-end integration: the full collection → usage pipeline across
//! crates, driven through the public façade.

use underlay_p2p::coords::VivaldiConfig;
use underlay_p2p::core::{AwarenessProfile, CollectionTechnique, InfoType, UsageStrategy};
use underlay_p2p::info::provider::{IspLocator, ProximityEstimator};
use underlay_p2p::info::{Ip2IspService, Oracle, VivaldiService};
use underlay_p2p::net::{
    HostId, PopulationSpec, TopologyKind, TopologySpec, Underlay, UnderlayConfig,
};
use underlay_p2p::sim::SimRng;

fn build_underlay(seed: u64, n: usize) -> Underlay {
    let mut rng = SimRng::new(seed);
    let graph = TopologySpec::new(TopologyKind::Hierarchical {
        tier1: 2,
        tier2_per_tier1: 2,
        tier3_per_tier2: 3,
        tier2_peering_prob: 0.3,
        tier3_peering_prob: 0.3,
    })
    .build(&mut rng);
    Underlay::build(
        graph,
        &PopulationSpec::leaf(n),
        UnderlayConfig::default(),
        &mut rng,
    )
}

#[test]
fn isp_location_pipeline_ip_mapping_plus_oracle() {
    // Profile: ISP-location collected via IP-to-ISP mapping, used for
    // biased neighbor selection.
    let profile = AwarenessProfile {
        info: InfoType::IspLocation,
        collection: CollectionTechnique::IpToIspMapping,
        usage: UsageStrategy::BiasedNeighborSelection,
    };
    assert!(profile.validate().is_ok());

    let u = build_underlay(5, 200);
    let mut mapping = Ip2IspService::build(&u, 1.0, SimRng::new(6));
    let mut oracle = Oracle::new(1000);
    let querier = HostId(0);
    let candidates: Vec<HostId> = u.hosts.ids().filter(|&h| h != querier).collect();
    // The mapping service and the oracle must agree on who is local.
    let ranked = oracle.rank(&u, querier, &candidates);
    let my_as = mapping.isp_of(querier);
    let n_local = candidates
        .iter()
        .filter(|&&c| mapping.isp_of(c) == my_as)
        .count();
    assert!(n_local > 0, "fixture needs same-AS candidates");
    for &top in ranked.iter().take(n_local) {
        assert_eq!(mapping.isp_of(top), my_as);
    }
}

#[test]
fn latency_pipeline_vivaldi_vs_ground_truth() {
    // Profile: latency collected via Vivaldi, used for latency-aware
    // overlay construction.
    let profile = AwarenessProfile {
        info: InfoType::Latency,
        collection: CollectionTechnique::VivaldiCoordinates,
        usage: UsageStrategy::LatencyAwareOverlay,
    };
    assert!(profile.validate().is_ok());

    let u = build_underlay(7, 120);
    let mut rng = SimRng::new(8);
    let mut vivaldi = VivaldiService::new(u.n_hosts(), VivaldiConfig::default());
    vivaldi.converge(&u, 40, 4, &mut rng);

    // Neighbor selection through the generic ProximityEstimator interface:
    // the top-8 predicted must have a far lower true RTT than a random 8.
    let from = HostId(0);
    let candidates: Vec<HostId> = (1..120).map(HostId).collect();
    let ranked = vivaldi.rank(from, &candidates, &mut rng);
    let mean_rtt = |hs: &[HostId]| {
        hs.iter()
            .map(|&h| u.rtt_us(from, h).unwrap() as f64)
            .sum::<f64>()
            / hs.len() as f64
    };
    let top = mean_rtt(&ranked[..8]);
    let all = mean_rtt(&candidates);
    assert!(
        top < 0.7 * all,
        "predicted-nearest mean RTT {top} not well below population mean {all}"
    );
}

#[test]
fn invalid_profiles_are_rejected() {
    // GPS cannot collect latency; superpeer selection does not consume
    // geolocation. The framework must refuse both.
    assert!(AwarenessProfile {
        info: InfoType::Latency,
        collection: CollectionTechnique::Gps,
        usage: UsageStrategy::LatencyAwareOverlay,
    }
    .validate()
    .is_err());
    assert!(AwarenessProfile {
        info: InfoType::Geolocation,
        collection: CollectionTechnique::Gps,
        usage: UsageStrategy::SuperpeerSelection,
    }
    .validate()
    .is_err());
}

#[test]
fn degraded_mapping_accuracy_degrades_locality_decisions() {
    let u = build_underlay(9, 150);
    let precision_with = |accuracy: f64| {
        let mut mapping = Ip2IspService::build(&u, accuracy, SimRng::new(10));
        let mut correct = 0usize;
        let mut total = 0usize;
        for h in u.hosts.ids() {
            total += 1;
            if mapping.isp_of(h) == u.hosts.as_of(h) {
                correct += 1;
            }
        }
        correct as f64 / total as f64
    };
    let perfect = precision_with(1.0);
    let sloppy = precision_with(0.6);
    assert_eq!(perfect, 1.0);
    assert!(sloppy < 0.8 && sloppy > 0.4, "sloppy precision {sloppy}");
}
